#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <numeric>
#include <sstream>

#include "envelope/parallel_envelope.hpp"
#include "machine/fabric.hpp"
#include "machine/profile.hpp"
#include "ops/basic.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

// Tests for the observability layer: RAII spans (nesting, cost attribution,
// zero overhead when disabled, determinism of the simulated figures), the
// fabric/machine telemetry counters, CostSnapshot arithmetic, and the JSON
// writer/parser that back the export formats.

// Global allocation counter for the zero-overhead test.  Counting all
// new/delete in the test binary is safe: we only compare the count across a
// region that performs no other allocations.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC pairs the replaced operator delete[] with the library operator new[]
// and flags the free(); the pairing is ours and correct (both sides malloc).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace dyncg {
namespace {

// Each test that records spans owns the global buffer for its duration.
struct TraceSession {
  TraceSession() {
    trace::clear();
    trace::enable();
  }
  ~TraceSession() {
    trace::disable();
    trace::clear();
  }
};

PolyFamily small_family(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Polynomial> fns;
  for (int i = 0; i < n; ++i) {
    std::vector<double> c{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
    fns.push_back(Polynomial(c));
  }
  return PolyFamily(std::move(fns));
}

TEST(CostSnapshot, Arithmetic) {
  CostSnapshot a{10, 100, 5};
  CostSnapshot b{3, 7, 1};
  CostSnapshot sum = a + b;
  EXPECT_EQ(sum.rounds, 13u);
  EXPECT_EQ(sum.messages, 107u);
  EXPECT_EQ(sum.local_ops, 6u);
  a += b;
  EXPECT_EQ(a, sum);
  EXPECT_NE(a, b);
  EXPECT_EQ(sum - b, CostSnapshot({10, 100, 5}));
}

TEST(CostSnapshot, ToJson) {
  CostSnapshot s{10, 100, 5};
  EXPECT_EQ(s.to_json(),
            "{\"rounds\":10,\"messages\":100,\"local_ops\":5,\"time\":15}");
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(s.to_json(), &v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("rounds")->number, 10.0);
  EXPECT_EQ(v.find("time")->number, 15.0);
}

TEST(Json, WriterParserRoundtrip) {
  json::Writer w;
  w.begin_object();
  w.key("s");
  w.value("quote \" backslash \\ newline \n tab \t");
  w.key("n");
  w.value(-12.5);
  w.key("big");
  w.value(std::uint64_t{1} << 53);
  w.key("flag");
  w.value(true);
  w.key("nothing");
  w.value_null();
  w.key("arr");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.begin_object();
  w.end_object();
  w.end_array();
  w.end_object();

  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(w.str(), &v, &err)) << err << " in " << w.str();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->string, "quote \" backslash \\ newline \n tab \t");
  EXPECT_EQ(v.find("n")->number, -12.5);
  EXPECT_EQ(v.find("big")->number, 9007199254740992.0);
  EXPECT_EQ(v.find("flag")->type, json::Value::Type::kBool);
  EXPECT_TRUE(v.find("flag")->boolean);
  EXPECT_EQ(v.find("nothing")->type, json::Value::Type::kNull);
  ASSERT_EQ(v.find("arr")->array.size(), 3u);
  EXPECT_EQ(v.find("arr")->array[1].number, 2.0);
}

TEST(Json, ParserRejectsMalformed) {
  json::Value v;
  std::string err;
  EXPECT_FALSE(json::parse("{", &v, &err));
  EXPECT_FALSE(json::parse("[1,]", &v, &err));
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", &v, &err));
  EXPECT_FALSE(json::parse("\"unterminated", &v, &err));
  EXPECT_FALSE(json::parse("01", &v, &err));
  EXPECT_TRUE(json::parse("  [1, 2.5e3, \"\\u0041\"] ", &v, &err)) << err;
  EXPECT_EQ(v.array[2].string, "A");
}

TEST(TraceSpan, NestingDepthAndOrder) {
  TraceSession session;
  {
    TRACE_SPAN("outer");
    {
      TRACE_SPAN("inner1");
    }
    {
      TRACE_SPAN("inner2");
      { TRACE_SPAN("leaf"); }
    }
  }
  std::vector<trace::Event> ev = trace::snapshot();
  ASSERT_EQ(ev.size(), 4u);
  // Sorted by start time: outer, inner1, inner2, leaf.
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[0].depth, 0u);
  EXPECT_EQ(ev[1].name, "inner1");
  EXPECT_EQ(ev[1].depth, 1u);
  EXPECT_EQ(ev[2].name, "inner2");
  EXPECT_EQ(ev[2].depth, 1u);
  EXPECT_EQ(ev[3].name, "leaf");
  EXPECT_EQ(ev[3].depth, 2u);
  // All on the recording (main) thread, intervals nested in the outer span.
  for (const trace::Event& e : ev) {
    EXPECT_EQ(e.tid, ev[0].tid);
    EXPECT_GE(e.start_ns, ev[0].start_ns);
    EXPECT_LE(e.start_ns + e.dur_ns, ev[0].start_ns + ev[0].dur_ns);
  }
  EXPECT_EQ(trace::event_count(), 4u);
}

TEST(TraceSpan, LedgerDeltaMatchesHandCount) {
  TraceSession session;
  Machine m = Machine::hypercube_for(16);
  CostMeter meter(m.ledger());
  std::vector<long> v(16);
  std::iota(v.begin(), v.end(), 0L);
  ops::reduce(m, v, std::plus<long>{});
  CostSnapshot measured = meter.elapsed();

  // Hand count: reduce on n=16 runs log2(16)=4 exchange levels, each
  // charging exchange_rounds(k) rounds, n messages, and one local op.
  CostSnapshot expected;
  for (unsigned k = 0; k < 4; ++k) {
    expected.rounds += m.topology().exchange_rounds(k);
    expected.messages += 16;
    expected.local_ops += 1;
  }
  EXPECT_EQ(measured, expected);

  // The span recorded by ops::reduce must carry exactly that delta.
  std::vector<trace::Event> ev = trace::snapshot();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].name, "ops.reduce");
  EXPECT_EQ(ev[0].cost, expected);
}

TEST(TraceSpan, DisabledModeAllocatesNothing) {
  ASSERT_FALSE(trace::enabled());
  CostLedger ledger;
  // Warm up any lazy thread-local state outside the measured region.
  { TRACE_SPAN("warmup"); }
  std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    TRACE_SPAN("disabled");
    TRACE_SPAN_COST("disabled_cost", ledger);
  }
  std::uint64_t after = g_allocations.load();
  EXPECT_EQ(before, after);
  EXPECT_EQ(trace::event_count(), 0u);
}

TEST(TraceSpan, LedgerIdenticalWithTracingOnAndOff) {
  for (unsigned threads : {1u, 4u}) {
    set_host_threads(threads);
    PolyFamily fam = small_family(99, 16);

    Machine off = envelope_machine_mesh(fam.size(), 1);
    ASSERT_FALSE(trace::enabled());
    PiecewiseFn env_off = parallel_envelope(off, fam, 1);
    CostSnapshot cost_off = off.ledger().snapshot();

    Machine on = envelope_machine_mesh(fam.size(), 1);
    PiecewiseFn env_on;
    {
      TraceSession session;
      env_on = parallel_envelope(on, fam, 1);
      EXPECT_GT(trace::event_count(), 0u);
    }
    CostSnapshot cost_on = on.ledger().snapshot();

    // Byte-identical figures and identical output, tracing on or off.
    EXPECT_EQ(cost_off, cost_on) << "threads=" << threads;
    ASSERT_EQ(env_off.pieces.size(), env_on.pieces.size());
    for (std::size_t i = 0; i < env_off.pieces.size(); ++i) {
      EXPECT_EQ(env_off.pieces[i].id, env_on.pieces[i].id);
      EXPECT_EQ(env_off.pieces[i].iv.lo, env_on.pieces[i].iv.lo);
      EXPECT_EQ(env_off.pieces[i].iv.hi, env_on.pieces[i].iv.hi);
    }
  }
  set_host_threads(0);  // back to the default resolution
}

TEST(TraceExport, ChromeTraceAndJsonlWellFormed) {
  TraceSession session;
  Machine m = Machine::hypercube_for(8);
  std::vector<long> v(8, 1);
  ops::reduce(m, v, std::plus<long>{});

  const std::string base = ::testing::TempDir() + "test_trace_out";
  ASSERT_TRUE(trace::write(base + ".json"));
  ASSERT_TRUE(trace::write(base + ".jsonl"));

  std::ifstream in(base + ".json");
  std::stringstream ss;
  ss << in.rdbuf();
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(ss.str(), &doc, &err)) << err;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), trace::event_count());
  const json::Value& e = events->array[0];
  EXPECT_EQ(e.find("name")->string, "ops.reduce");
  EXPECT_EQ(e.find("ph")->string, "X");
  EXPECT_EQ(e.find("args")->find("rounds")->number,
            static_cast<double>(m.ledger().snapshot().rounds));

  std::ifstream jl(base + ".jsonl");
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jl, line)) {
    if (line.empty()) continue;
    json::Value rec;
    ASSERT_TRUE(json::parse(line, &rec, &err)) << err;
    EXPECT_NE(rec.find("name"), nullptr);
    EXPECT_NE(rec.find("rounds"), nullptr);
    ++lines;
  }
  EXPECT_EQ(lines, trace::event_count());

  EXPECT_FALSE(trace::write("/nonexistent-dir/trace.json"));
  std::remove((base + ".json").c_str());
  std::remove((base + ".jsonl").c_str());
}

TEST(FabricTelemetry, CountersMatchTraffic) {
  auto topo = make_mesh_for(4);  // 2x2 mesh: every node has 2 neighbors
  CostLedger ledger;
  Fabric<long> fab(*topo, &ledger);
  FabricTelemetry tel;
  fab.set_telemetry(&tel);
  ASSERT_EQ(tel.link_messages.size(), fab.directed_links());

  // Round 1: two words.  Round 2: one word.  Round 3: empty.
  std::size_t n0 = topo->neighbors(0)[0];
  std::size_t n1 = topo->neighbors(0)[1];
  fab.send(0, n0, 1L);
  fab.send(0, n1, 2L);
  fab.deliver();
  fab.send(n0, 0, 3L);
  fab.deliver();
  fab.deliver();

  EXPECT_EQ(tel.rounds, 3u);
  EXPECT_EQ(tel.messages, 3u);
  EXPECT_EQ(tel.max_in_flight, 2u);
  std::uint64_t link_total =
      std::accumulate(tel.link_messages.begin(), tel.link_messages.end(),
                      std::uint64_t{0});
  EXPECT_EQ(link_total, tel.messages);
  EXPECT_EQ(tel.max_link_messages(), 1u);
  std::uint64_t hist_total = std::accumulate(
      tel.round_histogram.begin(), tel.round_histogram.end(), std::uint64_t{0});
  EXPECT_EQ(hist_total, tel.rounds);
  // Bucket 0: the empty round; bucket 1: the 1-word round; bucket 2: the
  // 2-word round.
  ASSERT_EQ(tel.round_histogram.size(), 3u);
  EXPECT_EQ(tel.round_histogram[0], 1u);
  EXPECT_EQ(tel.round_histogram[1], 1u);
  EXPECT_EQ(tel.round_histogram[2], 1u);
  // The fabric's own ledger view agrees.
  EXPECT_EQ(ledger.snapshot().rounds, tel.rounds);
  EXPECT_EQ(ledger.snapshot().messages, tel.messages);

  EXPECT_FALSE(tel.report().empty());
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(tel.to_json(), &v, &err)) << err;
  EXPECT_EQ(v.find("messages")->number, 3.0);
}

TEST(MachineTelemetry, PhasesAggregateByLabel) {
  Machine m = Machine::hypercube_for(8);
  MachineProfile prof(m);
  std::vector<long> v(8, 1);
  {
    auto p = prof.phase("reduce");
    ops::reduce(m, v, std::plus<long>{});
  }
  {
    auto p = prof.phase("reduce");
    ops::reduce(m, v, std::plus<long>{});
  }
  {
    auto p = prof.phase("broadcast");
    ops::broadcast(m, v, 0);
  }
  const auto& phases = m.telemetry().phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].label, "reduce");
  EXPECT_EQ(phases[0].calls, 2u);
  EXPECT_EQ(phases[1].label, "broadcast");
  EXPECT_EQ(phases[1].calls, 1u);
  CostSnapshot sum = phases[0].cost + phases[1].cost;
  EXPECT_EQ(sum, m.ledger().snapshot());

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(m.telemetry().to_json(), &doc, &err)) << err;
  ASSERT_NE(doc.find("phases"), nullptr);
  EXPECT_EQ(doc.find("phases")->array.size(), 2u);
}

}  // namespace
}  // namespace dyncg
