// Cross-cutting parameterized sweeps: dimensions x degrees x machines for
// the Section 4 pipelines, block widths and orderings for the ops layer.
// These are the "does the whole stack hold up away from the defaults"
// tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dyncg/collision.hpp"
#include "dyncg/containment.hpp"
#include "dyncg/proximity.hpp"
#include "ops/crcw.hpp"
#include "ops/sorting.hpp"
#include "support/rng.hpp"

namespace dyncg {
namespace {

// --- proximity across dimensions and degrees ---------------------------------

class ProximityMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ProximityMatrix, NeighborSequenceHoldsInAnyDimension) {
  auto [dim, k, which] = GetParam();
  Rng rng(static_cast<std::uint64_t>(dim * 100 + k * 10 + which));
  MotionSystem sys = random_motion_system(rng, 7, static_cast<std::size_t>(dim),
                                          k);
  Machine m = which == 0 ? proximity_machine_mesh(sys)
                         : proximity_machine_hypercube(sys);
  NeighborSequence seq = neighbor_sequence(m, sys, 0);
  for (double t = 0.031; t < 30; t = t * 1.41 + 0.029) {
    std::size_t got = seq.neighbor_at(t);
    std::size_t want = brute_force_neighbor(sys, 0, t, false);
    double dg = sys.point(0).distance_squared(sys.point(got))(t);
    double dw = sys.point(0).distance_squared(sys.point(want))(t);
    EXPECT_NEAR(dg, dw, 1e-6 * (1 + dw)) << "dim=" << dim << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsDegrees, ProximityMatrix,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1)));

// --- containment across dimensions --------------------------------------------

class ContainmentMatrix : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ContainmentMatrix, SpreadsHoldInAnyDimension) {
  auto [dim, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(500 + dim * 10 + k));
  MotionSystem sys = random_motion_system(rng, 6, static_cast<std::size_t>(dim),
                                          std::max(1, k));
  Machine m = containment_machine_hypercube(sys);
  auto spreads = coordinate_spreads(m, sys);
  ASSERT_EQ(spreads.size(), static_cast<std::size_t>(dim));
  for (double t = 0.047; t < 25; t = t * 1.53 + 0.031) {
    for (std::size_t c = 0; c < spreads.size(); ++c) {
      EXPECT_NEAR(spreads[c](t), brute_force_spread(sys, c, t), 1e-6)
          << "dim=" << dim << " k=" << k << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DimsDegrees, ContainmentMatrix,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3)));

// --- collisions in higher dimensions -------------------------------------------

TEST(CollisionMatrix, ThreeDimensionalPlantedCollision) {
  std::vector<Trajectory> pts;
  pts.push_back(Trajectory::fixed({0.0, 0.0, 0.0}));
  // Passes through the origin at t = 3 in 3-space.
  pts.push_back(Trajectory({Polynomial({-3.0, 1.0}), Polynomial({6.0, -2.0}),
                            Polynomial({-1.5, 0.5})}));
  pts.push_back(Trajectory::fixed({5.0, 5.0, 5.0}));
  MotionSystem sys(3, std::move(pts));
  Machine m = collision_machine_hypercube(sys);
  CollisionReport rep = collision_times(m, sys, 0);
  ASSERT_EQ(rep.events.size(), 1u);
  EXPECT_NEAR(rep.events[0].time, 3.0, 1e-9);
  EXPECT_EQ(rep.events[0].other, 1u);
}

TEST(CollisionMatrix, NearMissIsNotACollision) {
  // Passes within 0.1 of the origin but never touches it.
  std::vector<Trajectory> pts;
  pts.push_back(Trajectory::fixed({0.0, 0.0}));
  pts.push_back(Trajectory({Polynomial({-3.0, 1.0}), Polynomial({0.1})}));
  MotionSystem sys(2, std::move(pts));
  Machine m = collision_machine_mesh(sys);
  EXPECT_TRUE(collision_times(m, sys, 0).events.empty());
}

// --- ops: every mesh ordering must sort correctly -------------------------------

class SortOrderingMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SortOrderingMatrix, BitonicSortsUnderAllOrderings) {
  auto [order_idx, seed] = GetParam();
  MeshOrder order = static_cast<MeshOrder>(order_idx);
  Machine m(std::make_shared<MeshTopology>(8, order));
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<long> v(m.size());
  for (long& x : v) x = rng.uniform_int(-1000, 1000);
  std::vector<long> expect = v;
  std::sort(expect.begin(), expect.end());
  ops::bitonic_sort(m, v);
  EXPECT_EQ(v, expect) << to_string(order);
}

INSTANTIATE_TEST_SUITE_P(Orders, SortOrderingMatrix,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

// --- ops: block widths -----------------------------------------------------------

class BlockWidthMatrix : public ::testing::TestWithParam<int> {};

TEST_P(BlockWidthMatrix, SortMergePrefixRespectBlocks) {
  std::size_t width = std::size_t{1} << GetParam();
  Machine m = Machine::hypercube_for(64);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 31);

  // Sort per block.
  std::vector<long> v(64);
  for (long& x : v) x = rng.uniform_int(0, 999);
  std::vector<long> expect = v;
  ops::bitonic_sort(m, v, std::less<long>{}, width);
  for (std::size_t b = 0; b < 64; b += width) {
    std::sort(expect.begin() + static_cast<long>(b),
              expect.begin() + static_cast<long>(b + width));
  }
  EXPECT_EQ(v, expect) << "width=" << width;

  // Prefix per block.
  std::vector<long> p(64, 1);
  ops::prefix(m, p, std::plus<long>{}, width);
  for (std::size_t r = 0; r < 64; ++r) {
    EXPECT_EQ(p[r], static_cast<long>(r % width + 1));
  }

  // Merge per block (two sorted halves per block).
  if (width >= 2) {
    std::vector<long> mg(64);
    for (std::size_t b = 0; b < 64; b += width) {
      for (std::size_t i = 0; i < width / 2; ++i) {
        mg[b + i] = static_cast<long>(2 * i + 1);
        mg[b + width / 2 + i] = static_cast<long>(2 * i);
      }
    }
    ops::bitonic_merge(m, mg, std::less<long>{}, width);
    for (std::size_t b = 0; b < 64; b += width) {
      for (std::size_t i = 0; i + 1 < width; ++i) {
        EXPECT_LE(mg[b + i], mg[b + i + 1]) << "width=" << width;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BlockWidthMatrix, ::testing::Range(1, 7));

// --- concurrent read under duplicate and adversarial keys ------------------------

class CrcwMatrix : public ::testing::TestWithParam<int> {};

TEST_P(CrcwMatrix, ConcurrentReadWithDuplicateDataKeys) {
  Machine m = Machine::mesh_for(64);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  std::vector<std::optional<std::pair<long, long>>> data(64);
  std::vector<std::optional<long>> queries(64);
  // Few distinct keys, many owners and readers.
  for (std::size_t r = 0; r < 32; ++r) {
    long key = rng.uniform_int(0, 4);
    data[r] = std::pair<long, long>{key, key * 100};  // value determined by key
  }
  for (std::size_t r = 32; r < 64; ++r) queries[r] = rng.uniform_int(0, 6);
  auto got = ops::concurrent_read<long, long>(m, data, queries);
  std::set<long> present;
  for (std::size_t r = 0; r < 32; ++r) {
    if (data[r]) present.insert(data[r]->first);
  }
  for (std::size_t r = 32; r < 64; ++r) {
    long q = *queries[r];
    if (present.count(q)) {
      ASSERT_TRUE(got[r].has_value()) << "q=" << q;
      EXPECT_EQ(*got[r], q * 100);
    } else {
      EXPECT_FALSE(got[r].has_value()) << "q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrcwMatrix, ::testing::Range(0, 6));

// --- slotted sort sizes ------------------------------------------------------------

class SlottedSortMatrix : public ::testing::TestWithParam<int> {};

TEST_P(SlottedSortMatrix, SortsAnySlotCount) {
  std::size_t slots = std::size_t{1} << GetParam();
  Machine m = Machine::hypercube_for(32);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 13);
  std::vector<long> file(m.size() * slots);
  for (long& x : file) x = rng.uniform_int(0, 100000);
  std::vector<long> expect = file;
  std::sort(expect.begin(), expect.end());
  ops::bitonic_sort_slotted(m, file, slots);
  EXPECT_EQ(file, expect) << "slots=" << slots;
}

INSTANTIATE_TEST_SUITE_P(Slots, SlottedSortMatrix, ::testing::Range(0, 4));

}  // namespace
}  // namespace dyncg
