#include <gtest/gtest.h>

#include <cstdint>
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "envelope/scenario_key.hpp"
#include "pieces/interval.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "support/status.hpp"

// Protocol tests for the serving layer (docs/SERVING.md): parse/validate
// round-trips, canonical cache keys, FIFO cache counter semantics, and
// engine determinism.  Registered in the DYNCG_THREADS={1,4} matrix — the
// determinism assertions must hold at every thread count.
namespace dyncg {
namespace serve {
namespace {

StatusOr<Request> parse(const std::string& line) { return parse_request(line); }

// --- parse round-trips -------------------------------------------------------

TEST(ServeParse, GeneratorScenarioWithDefaults) {
  StatusOr<Request> r = parse("{\"op\":\"neighbor\",\"scenario\":{}}");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  // Defaults mirror dyncg_cli: seed=1 n=8 d=2 k=2.
  EXPECT_EQ(r.value().system->size(), 8u);
  EXPECT_EQ(r.value().system->dimension(), 2u);
  EXPECT_EQ(r.value().machine, "mesh");
  EXPECT_EQ(r.value().query, 0u);
  EXPECT_FALSE(r.value().key.empty());
}

TEST(ServeParse, GeneratorMatchesCliDefaults) {
  // The empty generator and the spelled-out CLI defaults key identically.
  Request a = parse("{\"op\":\"neighbor\",\"scenario\":{}}").value();
  Request b =
      parse("{\"op\":\"neighbor\",\"scenario\":"
            "{\"seed\":1,\"n\":8,\"d\":2,\"k\":2}}")
          .value();
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(ServeParse, InlineScenario) {
  // Each point is an array of coordinate polynomials (constant term first).
  StatusOr<Request> r = parse(
      "{\"op\":\"collisions\",\"scenario\":{\"points\":"
      "[[[1,0],[2,1]],[[0,1],[1,0]]],\"d\":2},\"query\":1}");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().system->size(), 2u);
  EXPECT_EQ(r.value().query, 1u);
}

TEST(ServeParse, InlineAndGeneratorKeyOnBits) {
  // A generator scenario and an inline scenario with the same coefficients
  // produce the same canonical key: keys come from the materialized system,
  // never from the surface form.
  Request gen =
      parse("{\"op\":\"neighbor\",\"scenario\":{\"seed\":3,\"n\":4,\"k\":1}}")
          .value();
  std::string inline_req = "{\"op\":\"neighbor\",\"scenario\":{\"points\":[";
  const MotionSystem& sys = *gen.system;
  for (std::size_t p = 0; p < sys.size(); ++p) {
    if (p > 0) inline_req += ',';
    inline_req += '[';
    for (std::size_t c = 0; c < sys.dimension(); ++c) {
      if (c > 0) inline_req += ',';
      inline_req += '[';
      const Polynomial& poly = sys.point(p).coordinate(c);
      // Emit exactly the stored coefficients ([0] for the zero polynomial):
      // Polynomial trims trailing zeros, so padding would round-trip anyway.
      for (int i = 0; i <= std::max(poly.degree(), 0); ++i) {
        if (i > 0) inline_req += ',';
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", poly.coefficient(i));
        inline_req += buf;
      }
      inline_req += ']';
    }
    inline_req += ']';
  }
  inline_req += "],\"d\":2}}";
  StatusOr<Request> inl = parse(inline_req);
  ASSERT_TRUE(inl.is_ok()) << inl.status().to_string();
  EXPECT_EQ(inl.value().key, gen.key);
  EXPECT_EQ(inl.value().fingerprint, gen.fingerprint);
}

TEST(ServeParse, IdEchoForms) {
  EXPECT_EQ(parse("{\"op\":\"ping\",\"id\":\"a\\\"b\"}").value().id_json,
            "\"a\\\"b\"");
  EXPECT_EQ(parse("{\"op\":\"ping\",\"id\":7}").value().id_json, "7");
  EXPECT_EQ(parse("{\"op\":\"ping\"}").value().id_json, "");
}

TEST(ServeParse, FaultsCanonicalizeIntoKey) {
  Request plain =
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"k\":1}}").value();
  Request faulted =
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"k\":1},"
            "\"faults\":\"link:0-1@0..\"}")
          .value();
  EXPECT_TRUE(faulted.has_faults);
  EXPECT_EQ(faulted.faults_spec, "link:0-1@0..");
  EXPECT_NE(plain.key, faulted.key);
  EXPECT_NE(plain.key.find("|s"), std::string::npos);
  EXPECT_NE(faulted.key.find("|xlink:0-1@0..|"), std::string::npos);
}

// --- rejections --------------------------------------------------------------

TEST(ServeParse, RejectsMalformedAndUnknown) {
  EXPECT_EQ(parse("not json").status().code(), StatusCode::kParseError);
  EXPECT_EQ(parse("{\"op\":\"frobnicate\"}").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse("{\"op\":\"ping\",\"bogus\":1}").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse("{\"scenario\":{}}").status().code(),
            StatusCode::kInvalidArgument);  // op is mandatory
  EXPECT_EQ(
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"zz\":1}}")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(ServeParse, RejectsOutOfRangeScenarios) {
  // Admission caps (docs/SERVING.md#limits).
  EXPECT_FALSE(
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":99999}}").is_ok());
  EXPECT_FALSE(
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"d\":99}}").is_ok());
  EXPECT_FALSE(
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"k\":99}}").is_ok());
  // Non-integer indexes are type errors, not truncations.
  EXPECT_FALSE(parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4.5}}").is_ok());
  EXPECT_FALSE(
      parse("{\"op\":\"neighbor\",\"scenario\":{},\"query\":\"zero\"}")
          .is_ok());
  // query must address a point of the materialized system.
  EXPECT_FALSE(
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4},\"query\":4}")
          .is_ok());
}

TEST(ServeParse, RejectsMixedAndMisappliedFields) {
  // Generator and inline forms cannot be mixed.
  EXPECT_FALSE(
      parse("{\"op\":\"neighbor\",\"scenario\":"
            "{\"seed\":1,\"points\":[[1,0]],\"d\":1}}")
          .is_ok());
  // box is containment-only; query is meaningless for pairs/contain.
  EXPECT_FALSE(
      parse("{\"op\":\"neighbor\",\"scenario\":{},\"box\":[1,1]}").is_ok());
  EXPECT_FALSE(
      parse("{\"op\":\"pairs\",\"scenario\":{},\"query\":0}").is_ok());
  // pairs/hullwhen/contain run on mesh or hypercube only — the server
  // rejects explicitly where the CLI silently remaps.
  EXPECT_FALSE(parse("{\"op\":\"pairs\",\"scenario\":{},\"machine\":\"ccc\"}")
                   .is_ok());
  // steady is generator-only.
  EXPECT_FALSE(
      parse("{\"op\":\"steady\",\"scenario\":{\"points\":[[1,0]],\"d\":1}}")
          .is_ok());
  // Malformed fault specs surface FaultPlan::parse's kParseError.
  EXPECT_EQ(parse("{\"op\":\"neighbor\",\"scenario\":{},"
                  "\"faults\":\"bogus:1@2\"}")
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(ServeParse, RejectsHostileEncodings) {
  // Protocol hardening (docs/ROBUSTNESS.md#serving-resilience): duplicate
  // members, non-finite numbers, and out-of-range integers are rejected at
  // parse time with the pinned codes — never silently last-wins or clamped.
  struct RejectCase {
    const char* name;
    const char* line;
    StatusCode code;
  };
  const RejectCase kCases[] = {
      {"duplicate op",
       "{\"op\":\"ping\",\"op\":\"stats\"}",
       StatusCode::kInvalidArgument},
      {"duplicate scenario",
       "{\"op\":\"neighbor\",\"scenario\":{},\"scenario\":{\"n\":4}}",
       StatusCode::kInvalidArgument},
      {"duplicate id",
       "{\"op\":\"ping\",\"id\":1,\"id\":2}",
       StatusCode::kInvalidArgument},
      {"duplicate scenario member",
       "{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"n\":8}}",
       StatusCode::kInvalidArgument},
      {"duplicate deadline_ms",
       "{\"op\":\"ping\",\"deadline_ms\":5,\"deadline_ms\":6}",
       StatusCode::kInvalidArgument},
      // strtod parses "1e999" as infinity without a JSON-level error; the
      // protocol refuses to materialize a system from it.
      {"infinite coefficient",
       "{\"op\":\"neighbor\",\"scenario\":{\"points\":[[[1e999],[0]]],"
       "\"d\":2}}",
       StatusCode::kInvalidArgument},
      {"negative-infinite coefficient",
       "{\"op\":\"neighbor\",\"scenario\":{\"points\":[[[-1e999],[0]]],"
       "\"d\":2}}",
       StatusCode::kInvalidArgument},
      {"infinite box entry",
       "{\"op\":\"contain\",\"scenario\":{},\"box\":[1e999,1]}",
       StatusCode::kInvalidArgument},
      {"deadline_ms zero",
       "{\"op\":\"ping\",\"deadline_ms\":0}",
       StatusCode::kInvalidArgument},
      {"deadline_ms above one hour",
       "{\"op\":\"ping\",\"deadline_ms\":3600001}",
       StatusCode::kInvalidArgument},
      {"deadline_ms fractional",
       "{\"op\":\"ping\",\"deadline_ms\":1.5}",
       StatusCode::kInvalidArgument},
      {"deadline_ms wrong type",
       "{\"op\":\"ping\",\"deadline_ms\":\"fast\"}",
       StatusCode::kInvalidArgument},
      {"deadline_ms negative",
       "{\"op\":\"ping\",\"deadline_ms\":-1}",
       StatusCode::kInvalidArgument},
      {"seed overflows its 2^40 cap",
       "{\"op\":\"neighbor\",\"scenario\":{\"seed\":1e300}}",
       StatusCode::kInvalidArgument},
  };
  for (const RejectCase& c : kCases) {
    StatusOr<Request> r = parse(c.line);
    ASSERT_FALSE(r.is_ok()) << c.name << ": accepted " << c.line;
    EXPECT_EQ(r.status().code(), c.code)
        << c.name << ": " << r.status().to_string();
  }
}

TEST(ServeParse, DeadlineBudgetAcceptedAndExcludedFromKey) {
  // The full documented range is accepted...
  EXPECT_EQ(parse("{\"op\":\"ping\",\"deadline_ms\":1}").value().deadline_ms,
            1u);
  EXPECT_EQ(
      parse("{\"op\":\"ping\",\"deadline_ms\":3600000}").value().deadline_ms,
      3600000u);
  // ...and like "id", the budget shapes scheduling, not the answer: two
  // requests differing only in deadline_ms share one cache entry.
  Request plain = parse("{\"op\":\"neighbor\",\"scenario\":{}}").value();
  Request budgeted =
      parse("{\"op\":\"neighbor\",\"scenario\":{},\"deadline_ms\":250}")
          .value();
  EXPECT_EQ(budgeted.deadline_ms, 250u);
  EXPECT_EQ(plain.key, budgeted.key);
  EXPECT_EQ(plain.fingerprint, budgeted.fingerprint);
}

// --- fleet sessions ----------------------------------------------------------

TEST(ServeParse, FleetOpenDefaultsAndForms) {
  // Fleet ops are stateful session traffic: they parse to a request with no
  // scenario and no cache key (the server routes them by name, not key).
  Request open = parse("{\"op\":\"fleet_open\"}").value();
  EXPECT_EQ(open.op, Op::kFleetOpen);
  EXPECT_TRUE(is_fleet_op(open.op));
  EXPECT_TRUE(open.key.empty());
  EXPECT_EQ(open.fleet_d, 2u);  // defaults mirror scenario defaults
  EXPECT_EQ(open.fleet_k, 2);
  EXPECT_EQ(open.machine, "mesh");
  EXPECT_FALSE(open.fleet_ref.has_value());
  Request full =
      parse("{\"op\":\"fleet_open\",\"d\":3,\"k\":1,"
            "\"machine\":\"hypercube\",\"ref\":[[1,2],[0],[5]]}")
          .value();
  EXPECT_EQ(full.fleet_d, 3u);
  EXPECT_EQ(full.fleet_k, 1);
  EXPECT_EQ(full.machine, "hypercube");
  ASSERT_TRUE(full.fleet_ref.has_value());
  EXPECT_EQ(full.fleet_ref->dimension(), 3u);
  EXPECT_EQ(full.fleet_ref->coordinate(0).coefficient(1), 2.0);
}

TEST(ServeParse, FleetUpdateForms) {
  Request r =
      parse("{\"op\":\"fleet_update\",\"fleet\":\"fleet-1\","
            "\"insert\":[{\"id\":7,\"point\":[[0,1],[2]]}],"
            "\"erase\":[3,4],\"advance\":2.5}")
          .value();
  EXPECT_EQ(r.op, Op::kFleetUpdate);
  EXPECT_EQ(r.fleet, "fleet-1");
  ASSERT_EQ(r.fleet_insert.size(), 1u);
  EXPECT_EQ(r.fleet_insert[0].first, 7u);
  EXPECT_EQ(r.fleet_insert[0].second.dimension(), 2u);
  EXPECT_EQ(r.fleet_erase, (std::vector<std::uint64_t>{3, 4}));
  EXPECT_TRUE(r.fleet_has_advance);
  EXPECT_EQ(r.fleet_advance, 2.5);
  // Each of the three mutation fields stands alone.
  EXPECT_TRUE(parse("{\"op\":\"fleet_update\",\"fleet\":\"f\",\"erase\":[1]}")
                  .is_ok());
  EXPECT_TRUE(parse("{\"op\":\"fleet_update\",\"fleet\":\"f\",\"advance\":0}")
                  .is_ok());
  Request q = parse("{\"op\":\"fleet_query\",\"fleet\":\"f\"}").value();
  EXPECT_TRUE(q.key.empty());
  EXPECT_EQ(q.fleet, "f");
}

TEST(ServeParse, FleetRejections) {
  struct RejectCase {
    const char* name;
    const char* line;
  };
  const RejectCase kCases[] = {
      {"fleet field on a non-fleet op",
       "{\"op\":\"ping\",\"fleet\":\"f\"}"},
      {"scenario on a fleet op",
       "{\"op\":\"fleet_query\",\"fleet\":\"f\",\"scenario\":{}}"},
      {"open names its own session",
       "{\"op\":\"fleet_open\",\"fleet\":\"f\"}"},
      {"open on a non-envelope machine",
       "{\"op\":\"fleet_open\",\"machine\":\"ccc\"}"},
      {"ref arity disagrees with d",
       "{\"op\":\"fleet_open\",\"d\":3,\"ref\":[[1],[2]]}"},
      {"ref motion degree above k",
       "{\"op\":\"fleet_open\",\"d\":1,\"k\":1,\"ref\":[[1,1,1]]}"},
      {"update without a session name",
       "{\"op\":\"fleet_update\",\"erase\":[1]}"},
      {"update with nothing to do",
       "{\"op\":\"fleet_update\",\"fleet\":\"f\"}"},
      {"query carrying update fields",
       "{\"op\":\"fleet_query\",\"fleet\":\"f\",\"erase\":[1]}"},
      {"open carrying update fields",
       "{\"op\":\"fleet_open\",\"advance\":1}"},
      {"d/k/ref outside open",
       "{\"op\":\"fleet_update\",\"fleet\":\"f\",\"erase\":[1],\"d\":2}"},
      {"empty insert array",
       "{\"op\":\"fleet_update\",\"fleet\":\"f\",\"insert\":[]}"},
      {"insert entry missing its point",
       "{\"op\":\"fleet_update\",\"fleet\":\"f\",\"insert\":[{\"id\":1}]}"},
      {"insert entry with a stray member",
       "{\"op\":\"fleet_update\",\"fleet\":\"f\","
       "\"insert\":[{\"id\":1,\"point\":[[1]],\"zz\":1}]}"},
      {"fractional member id",
       "{\"op\":\"fleet_update\",\"fleet\":\"f\","
       "\"insert\":[{\"id\":1.5,\"point\":[[1]]}]}"},
      {"non-finite insert coefficient",
       "{\"op\":\"fleet_update\",\"fleet\":\"f\","
       "\"insert\":[{\"id\":1,\"point\":[[1e999]]}]}"},
      {"negative advance",
       "{\"op\":\"fleet_update\",\"fleet\":\"f\",\"advance\":-1}"},
      {"string advance",
       "{\"op\":\"fleet_update\",\"fleet\":\"f\",\"advance\":\"3\"}"},
      {"empty session name",
       "{\"op\":\"fleet_query\",\"fleet\":\"\"}"},
  };
  for (const RejectCase& c : kCases) {
    StatusOr<Request> r = parse(c.line);
    ASSERT_FALSE(r.is_ok()) << c.name << ": accepted " << c.line;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << c.name;
  }
}

TEST(ServeRender, FleetResponsesExactForm) {
  FleetOpenInfo open;
  open.fleet = "fleet-1";
  open.d = 3;
  open.k = 1;
  open.max_members = 64;
  EXPECT_EQ(render_fleet_open("", open),
            "{\"status\":\"OK\",\"op\":\"fleet_open\",\"fleet\":\"fleet-1\","
            "\"d\":3,\"k\":1,\"max_members\":64,\"result\":\"opened\"}");
  // t / next_event are %.17g strings: exact round-trip, and "inf" (a
  // drained envelope that never changes again) stays valid JSON.
  FleetUpdateInfo up;
  up.fleet = "fleet-1";
  up.inserted = 2;
  up.deduped = 1;
  up.erased = 0;
  up.members = 3;
  up.t = 0.1;  // not representable: %.12g would round it to "0.1"
  up.next_event = kInfinity;
  std::string line = render_fleet_update("\"u\"", up);
  EXPECT_NE(line.find("\"id\":\"u\""), std::string::npos);
  EXPECT_NE(line.find("\"t\":\"0.10000000000000001\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"next_event\":\"inf\""), std::string::npos);
  EXPECT_NE(line.find("\"inserted\":2,\"deduped\":1,\"erased\":0"),
            std::string::npos);
  FleetQueryInfo q;
  q.fleet = "fleet-1";
  q.fingerprint = kFingerprintSeed;
  q.members = 3;
  q.t = 1.0;
  q.next_event = 2.0;
  q.result = "min envelope of 3 at t=1: E1 on [1, inf); \n";
  std::string qline = render_fleet_query("", q);
  EXPECT_NE(qline.find("\"key\":\"cbf29ce484222325\""), std::string::npos);
  // The embedded result newline must be escaped — responses are one line.
  EXPECT_EQ(qline.find('\n'), std::string::npos);
  EXPECT_EQ(render_fleet_close("7", "fleet-1", 3),
            "{\"id\":7,\"status\":\"OK\",\"op\":\"fleet_close\","
            "\"fleet\":\"fleet-1\",\"members\":3,\"result\":\"closed\"}");
}

// --- response rendering ------------------------------------------------------

TEST(ServeRender, StatsV4PinnedFieldOrder) {
  // Schema v3 inserted "shed" and "deadline_exceeded" between "rejected"
  // and "batches"; v4 appended "fleets" after "entries".  The order is
  // part of the contract (docs/SERVING.md#the-stats-op).
  ServeStats s;
  s.rejected = 2;
  s.shed = 3;
  s.deadline_exceeded = 4;
  s.batches = 5;
  s.entries = 6;
  s.fleets = 7;
  std::string line = render_stats("", s);
  EXPECT_NE(line.find("\"schema_version\":4"), std::string::npos);
  EXPECT_NE(line.find("\"rejected\":2,\"shed\":3,"
                      "\"deadline_exceeded\":4,\"batches\":5"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"entries\":6,\"fleets\":7"), std::string::npos)
      << line;
}

TEST(ServeRender, ErrorDrainingFlagForm) {
  Status st = Status::unavailable("draining");
  EXPECT_EQ(render_error("7", st, true),
            "{\"id\":7,\"status\":\"UNAVAILABLE\",\"draining\":true,"
            "\"error\":\"draining\"}");
  // Without the flag the member is absent, not false.
  EXPECT_EQ(render_error("7", st).find("draining\":"), std::string::npos);
}

// --- canonical keys ----------------------------------------------------------

TEST(ScenarioKey, BitExactAndStructural) {
  std::uint64_t base = fingerprint_mix(kFingerprintSeed, 1.0);
  EXPECT_NE(base, fingerprint_mix(kFingerprintSeed, 1.0 + 1e-15));
  // -0.0 and +0.0 compare equal as doubles but key differently (bit pattern
  // contract).
  EXPECT_NE(fingerprint_mix(kFingerprintSeed, 0.0),
            fingerprint_mix(kFingerprintSeed, -0.0));
  // Degree changes change the key, even when leading coefficients agree.
  Polynomial one = Polynomial::constant(1.0);
  Polynomial affine({1.0, 1.0});
  EXPECT_NE(fingerprint(one), fingerprint(affine));
  std::string a, b;
  append_canonical(a, one);
  append_canonical(b, affine);
  EXPECT_NE(a, b);
  // The zero polynomial (degree -1) keys safely and distinctly.
  std::string z;
  append_canonical(z, Polynomial());
  EXPECT_NE(z, a);
  EXPECT_NE(fingerprint(Polynomial()), fingerprint(one));
}

TEST(ScenarioKey, FingerprintHexShape) {
  std::string hex = fingerprint_hex(kFingerprintSeed);
  ASSERT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex, "cbf29ce484222325");
}

TEST(ScenarioKey, KeyDependsOnEveryOpParameter) {
  const char* base = "{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"k\":1}}";
  Request r0 = parse(base).value();
  Request q1 =
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"k\":1},\"query\":1}")
          .value();
  Request far =
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"k\":1},"
            "\"farthest\":true}")
          .value();
  Request cube =
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"k\":1},"
            "\"machine\":\"hypercube\"}")
          .value();
  Request coll =
      parse("{\"op\":\"collisions\",\"scenario\":{\"n\":4,\"k\":1}}").value();
  EXPECT_NE(r0.key, q1.key);
  EXPECT_NE(r0.key, far.key);
  EXPECT_NE(r0.key, cube.key);
  EXPECT_NE(r0.key, coll.key);
  // id is an echo, never part of the key.
  Request with_id =
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"k\":1},\"id\":9}")
          .value();
  EXPECT_EQ(r0.key, with_id.key);
  EXPECT_EQ(r0.fingerprint, with_id.fingerprint);
}

// --- cache semantics ---------------------------------------------------------

CachedResult result_named(const std::string& text) {
  CachedResult r;
  r.text = text;
  r.topology = "mesh";
  r.pes = 4;
  return r;
}

TEST(ResultCacheTest, FifoEvictionAndExactCounters) {
  ResultCache cache(2);
  EXPECT_EQ(cache.find("a"), nullptr);  // miss 1
  cache.insert("a", result_named("A"));
  cache.insert("b", result_named("B"));
  ASSERT_NE(cache.find("a"), nullptr);  // hit 1 — does NOT refresh FIFO order
  cache.insert("c", result_named("C"));  // evicts "a" (oldest), not "b"
  EXPECT_EQ(cache.find("a"), nullptr);   // miss 2
  ASSERT_NE(cache.find("b"), nullptr);   // hit 2
  ASSERT_NE(cache.find("c"), nullptr);   // hit 3
  EXPECT_EQ(cache.counters().hits, 3u);
  EXPECT_EQ(cache.counters().misses, 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  // contains() peeks without counting.
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_EQ(cache.counters().hits, 3u);
}

TEST(ResultCacheTest, DuplicateInsertIsNoOp) {
  ResultCache cache(2);
  cache.insert("k", result_named("first"));
  cache.insert("k", result_named("second"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find("k")->text, "first");
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.insert("k", result_named("v"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find("k"), nullptr);
  EXPECT_EQ(cache.counters().misses, 1u);
}

// --- engine determinism ------------------------------------------------------

TEST(ServeEngine, RepeatComputesAreByteIdentical) {
  // The cache serves stored bytes, so a recompute of the same key must be
  // byte-identical — at every DYNCG_THREADS (this suite runs in the thread
  // matrix).
  const char* reqs[] = {
      "{\"op\":\"neighbor\",\"scenario\":{\"n\":6,\"k\":1},\"query\":0}",
      "{\"op\":\"collisions\",\"scenario\":{\"n\":6,\"k\":1},\"query\":1}",
      "{\"op\":\"contain\",\"scenario\":{\"n\":6,\"k\":1},\"box\":[8,6]}",
      "{\"op\":\"steady\",\"scenario\":{\"n\":6,\"k\":1}}",
  };
  for (const char* line : reqs) {
    Request r = parse(line).value();
    StatusOr<CachedResult> first = run_query(r);
    ASSERT_TRUE(first.is_ok()) << first.status().to_string();
    StatusOr<CachedResult> second = run_query(r);
    ASSERT_TRUE(second.is_ok());
    EXPECT_EQ(first.value().text, second.value().text) << line;
    EXPECT_EQ(first.value().cost.rounds, second.value().cost.rounds) << line;
    EXPECT_FALSE(first.value().text.empty());
    EXPECT_GT(first.value().pes, 0u);
  }
}

TEST(ServeEngine, RenderHitMissDifferOnlyInCacheField) {
  Request r =
      parse("{\"op\":\"neighbor\",\"scenario\":{\"n\":4,\"k\":1}}").value();
  CachedResult res = run_query(r).value();
  std::string hit = render_result(r.id_json, r.op, res, true, r.fingerprint);
  std::string miss = render_result(r.id_json, r.op, res, false, r.fingerprint);
  EXPECT_NE(hit.find("\"cache\":\"hit\""), std::string::npos);
  EXPECT_NE(miss.find("\"cache\":\"miss\""), std::string::npos);
  std::string hit_stripped = hit;
  hit_stripped.replace(hit.find("\"cache\":\"hit\""),
                       std::string("\"cache\":\"hit\"").size(),
                       "\"cache\":\"miss\"");
  EXPECT_EQ(hit_stripped, miss);
  // Responses are single lines.
  EXPECT_EQ(hit.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace dyncg
