#include <gtest/gtest.h>

#include <cmath>

#include "poly/asymptotic.hpp"
#include "poly/polynomial.hpp"
#include "poly/roots.hpp"
#include "support/rng.hpp"

namespace dyncg {
namespace {

TEST(Polynomial, BasicArithmetic) {
  Polynomial p({1.0, 2.0});        // 1 + 2t
  Polynomial q({0.0, 0.0, 3.0});   // 3t^2
  EXPECT_EQ((p + q).degree(), 2);
  EXPECT_DOUBLE_EQ((p + q)(2.0), 1 + 4 + 12);
  EXPECT_DOUBLE_EQ((p - q)(2.0), 1 + 4 - 12);
  EXPECT_DOUBLE_EQ((p * q)(2.0), 5.0 * 12.0);
  EXPECT_DOUBLE_EQ((p * 2.0)(1.5), 2 * (1 + 3));
  EXPECT_EQ((-p)(3.0), -7.0);
}

TEST(Polynomial, ZeroHandling) {
  Polynomial z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  EXPECT_EQ(z.sign_at_infinity(), 0);
  Polynomial p({1.0});
  EXPECT_TRUE((p - p).is_zero());
  EXPECT_TRUE((p * z).is_zero());
  EXPECT_EQ(Polynomial({0.0, 0.0}).degree(), -1);
}

TEST(Polynomial, DegreeTrimming) {
  // A cancellation that leaves a tiny leading coefficient must trim.
  Polynomial a({0.0, 1.0, 1.0});
  Polynomial b({0.0, 0.0, 1.0});
  EXPECT_EQ((a - b).degree(), 1);
}

TEST(Polynomial, Derivative) {
  Polynomial p({5.0, 3.0, 2.0, 1.0});  // 5 + 3t + 2t^2 + t^3
  Polynomial d = p.derivative();
  EXPECT_EQ(d.degree(), 2);
  EXPECT_DOUBLE_EQ(d(2.0), 3 + 8 + 12);
  EXPECT_TRUE(Polynomial::constant(4.0).derivative().is_zero());
}

TEST(Polynomial, FromRoots) {
  Polynomial p = Polynomial::from_roots({1.0, 2.0, 3.0});
  EXPECT_EQ(p.degree(), 3);
  for (double r : {1.0, 2.0, 3.0}) EXPECT_NEAR(p(r), 0.0, 1e-12);
  EXPECT_GT(p(4.0), 0.0);
}

TEST(Polynomial, SignAtInfinityAndCompare) {
  EXPECT_EQ(Polynomial({0.0, -2.0}).sign_at_infinity(), -1);
  EXPECT_EQ(Polynomial({9.0, 0.0, 0.5}).sign_at_infinity(), 1);
  // Lemma 5.1: f = t beats g = 100 eventually.
  Polynomial f({0.0, 1.0}), g({100.0});
  EXPECT_EQ(compare_at_infinity(f, g), 1);
  EXPECT_EQ(compare_at_infinity(g, f), -1);
  EXPECT_EQ(compare_at_infinity(f, f), 0);
  // Same degree: leading coefficient decides.
  EXPECT_EQ(compare_at_infinity(Polynomial({5.0, 1.0}),
                                Polynomial({-5.0, 2.0})),
            -1);
  // Same leading term: next coefficient decides.
  EXPECT_EQ(compare_at_infinity(Polynomial({1.0, 1.0}),
                                Polynomial({2.0, 1.0})),
            -1);
}


TEST(Polynomial, ToStringReadable) {
  EXPECT_EQ(Polynomial().to_string(), "0");
  EXPECT_EQ(Polynomial({3.0}).to_string(), "3");
  std::string s = Polynomial({3.0, -1.0, 2.0}).to_string();
  EXPECT_NE(s.find("3"), std::string::npos);
  EXPECT_NE(s.find("t^2"), std::string::npos);
  EXPECT_NE(s.find("- 1 t"), std::string::npos);
}

TEST(Polynomial, RootBoundContainsAllRoots) {
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> roots;
    for (int i = 0; i < 4; ++i) roots.push_back(rng.uniform(-20, 20));
    Polynomial p = Polynomial::from_roots(roots) * rng.uniform(0.1, 5.0);
    double b = p.root_bound();
    for (double r : roots) EXPECT_LE(std::fabs(r), b + 1e-9);
  }
}

TEST(Polynomial, CoefficientAccessorOutOfRange) {
  Polynomial p({1.0, 2.0});
  EXPECT_DOUBLE_EQ(p.coefficient(0), 1.0);
  EXPECT_DOUBLE_EQ(p.coefficient(5), 0.0);
  EXPECT_DOUBLE_EQ(p.coefficient(-1), 0.0);
}

TEST(Roots, LinearAndQuadratic) {
  RootFindResult r = real_roots(Polynomial({-2.0, 1.0}), 0.0, 10.0);
  ASSERT_EQ(r.roots.size(), 1u);
  EXPECT_NEAR(r.roots[0], 2.0, 1e-12);

  r = real_roots(Polynomial::from_roots({1.0, 3.0}), 0.0, 10.0);
  ASSERT_EQ(r.roots.size(), 2u);
  EXPECT_NEAR(r.roots[0], 1.0, 1e-10);
  EXPECT_NEAR(r.roots[1], 3.0, 1e-10);

  // Tangential (double) root.
  r = real_roots(Polynomial::from_roots({2.0, 2.0}), 0.0, 10.0);
  ASSERT_EQ(r.roots.size(), 1u);
  EXPECT_NEAR(r.roots[0], 2.0, 1e-6);

  // No real roots.
  r = real_roots(Polynomial({1.0, 0.0, 1.0}), -10.0, 10.0);
  EXPECT_TRUE(r.roots.empty());
}

TEST(Roots, IdenticallyZero) {
  RootFindResult r = real_roots(Polynomial(), 0.0, 1.0);
  EXPECT_TRUE(r.identically_zero);
  r = crossing_times(Polynomial({1.0, 2.0}), Polynomial({1.0, 2.0}));
  EXPECT_TRUE(r.identically_zero);
}

TEST(Roots, HighDegreeKnownRoots) {
  Polynomial p = Polynomial::from_roots({0.5, 1.0, 2.0, 4.0, 8.0});
  RootFindResult r = real_roots_from(p, 0.0);
  ASSERT_EQ(r.roots.size(), 5u);
  double expect[] = {0.5, 1.0, 2.0, 4.0, 8.0};
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(r.roots[i], expect[i], 1e-8);
}

TEST(Roots, WindowRestriction) {
  Polynomial p = Polynomial::from_roots({1.0, 5.0, 9.0});
  RootFindResult r = real_roots(p, 2.0, 8.0);
  ASSERT_EQ(r.roots.size(), 1u);
  EXPECT_NEAR(r.roots[0], 5.0, 1e-9);
  // real_roots_from excludes roots before t0.
  r = real_roots_from(p, 4.0);
  ASSERT_EQ(r.roots.size(), 2u);
}

// Property sweep: random polynomials built from known roots must be
// recovered.
class RootRecovery : public ::testing::TestWithParam<int> {};

TEST_P(RootRecovery, RandomRootsRecovered) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  int deg = 2 + GetParam() % 5;
  std::vector<double> roots;
  double last = 0.2;
  for (int i = 0; i < deg; ++i) {
    last += rng.uniform(0.3, 2.0);  // well separated
    roots.push_back(last);
  }
  Polynomial p = Polynomial::from_roots(roots) *
                 rng.uniform(0.5, 2.0) * (rng.uniform(0, 1) < 0.5 ? -1 : 1);
  RootFindResult r = real_roots_from(p, 0.0);
  ASSERT_EQ(r.roots.size(), roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_NEAR(r.roots[i], roots[i], 1e-6 * (1 + roots[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RootRecovery, ::testing::Range(0, 40));

TEST(Roots, RobustSign) {
  Polynomial p = Polynomial::from_roots({1.0});
  EXPECT_EQ(robust_sign(p, 0.5), -1);
  EXPECT_EQ(robust_sign(p, 1.0), 0);
  EXPECT_EQ(robust_sign(p, 1.5), 1);
}

TEST(Asymptotic, OrderedRing) {
  AsymptoticPoly t(Polynomial({0.0, 1.0}));
  AsymptoticPoly c5(5.0);
  EXPECT_TRUE(c5 < t);
  EXPECT_TRUE(t * t > t);
  EXPECT_TRUE(t - t == AsymptoticPoly(0.0));
  EXPECT_EQ((t * t - t).sign(), 1);
  EXPECT_EQ((c5 - t * t).sign(), -1);
  // Arithmetic consistency: (t + 5)^2 == t^2 + 10t + 25.
  AsymptoticPoly lhs = (t + c5) * (t + c5);
  AsymptoticPoly rhs = t * t + AsymptoticPoly(10.0) * t + AsymptoticPoly(25.0);
  EXPECT_TRUE(lhs == rhs);
}

}  // namespace
}  // namespace dyncg
