#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "machine/fabric.hpp"
#include "machine/machine.hpp"
#include "machine/profile.hpp"
#include "machine/topology.hpp"
#include "support/rng.hpp"

namespace dyncg {
namespace {

TEST(Indexing, GrayCodeRoundTripAndAdjacency) {
  for (std::uint64_t i = 0; i < 1024; ++i) {
    EXPECT_EQ(gray_decode(gray_encode(i)), i);
  }
  // Section 2.3: consecutive Gray codes differ in exactly one bit.
  for (std::uint64_t i = 0; i + 1 < 256; ++i) {
    std::uint64_t x = gray_encode(i) ^ gray_encode(i + 1);
    EXPECT_EQ(x & (x - 1), 0u);
    EXPECT_NE(x, 0u);
  }
  // The paper's G_k recursion, first values: 0 1 3 2 6 7 5 4.
  std::uint64_t expect[] = {0, 1, 3, 2, 6, 7, 5, 4};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(gray_encode(i), expect[i]);
}

TEST(Indexing, HilbertRoundTripAndLocality) {
  for (std::uint32_t side : {2u, 4u, 8u, 16u}) {
    for (std::uint64_t d = 0; d < static_cast<std::uint64_t>(side) * side; ++d) {
      RowCol rc = hilbert_d2rc(side, d);
      EXPECT_LT(rc.row, side);
      EXPECT_LT(rc.col, side);
      EXPECT_EQ(hilbert_rc2d(side, rc), d);
    }
    // Property 1 of proximity order: consecutive indices are lattice
    // neighbors.
    for (std::uint64_t d = 0; d + 1 < static_cast<std::uint64_t>(side) * side; ++d) {
      RowCol a = hilbert_d2rc(side, d);
      RowCol b = hilbert_d2rc(side, d + 1);
      int dist = std::abs(static_cast<int>(a.row) - static_cast<int>(b.row)) +
                 std::abs(static_cast<int>(a.col) - static_cast<int>(b.col));
      EXPECT_EQ(dist, 1) << "side=" << side << " d=" << d;
    }
  }
}

TEST(Indexing, ProximitySubmeshProperty) {
  // Property 2: every aligned quarter of the index range occupies one
  // quadrant (a submesh).
  std::uint32_t side = 8;
  std::uint64_t quarter = side * side / 4;
  for (int q = 0; q < 4; ++q) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> quadrants;
    for (std::uint64_t d = q * quarter; d < (q + 1) * quarter; ++d) {
      RowCol rc = hilbert_d2rc(side, d);
      quadrants.insert({rc.row / (side / 2), rc.col / (side / 2)});
    }
    EXPECT_EQ(quadrants.size(), 1u) << "quarter " << q;
  }
}

TEST(Indexing, AllOrdersAreBijections) {
  std::uint32_t side = 8;
  for (MeshOrder order : {MeshOrder::kRowMajor, MeshOrder::kShuffledRowMajor,
                          MeshOrder::kSnake, MeshOrder::kProximity}) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < static_cast<std::uint64_t>(side) * side; ++r) {
      RowCol rc = mesh_rank_to_rc(order, side, r);
      EXPECT_EQ(mesh_rc_to_rank(order, side, rc), r);
      seen.insert(static_cast<std::uint64_t>(rc.row) * side + rc.col);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(side) * side);
  }
}

TEST(Indexing, Figure2SpotChecks) {
  // Figure 2 of the paper, mesh of size 16 (indices by row then column).
  // Row-major row 1: 4 5 6 7.
  EXPECT_EQ(mesh_rc_to_rank(MeshOrder::kRowMajor, 4, RowCol{1, 0}), 4u);
  // Snake-like row 1 runs right-to-left: position (1,0) has index 7.
  EXPECT_EQ(mesh_rc_to_rank(MeshOrder::kSnake, 4, RowCol{1, 0}), 7u);
  // Shuffled row-major: the NE quadrant holds indices 4..7.
  EXPECT_EQ(mesh_rc_to_rank(MeshOrder::kShuffledRowMajor, 4, RowCol{0, 2}), 4u);
  EXPECT_EQ(mesh_rc_to_rank(MeshOrder::kShuffledRowMajor, 4, RowCol{1, 1}), 3u);
}

TEST(MeshTopology, StructureAndDiameter) {
  MeshTopology mesh(4);
  EXPECT_EQ(mesh.size(), 16u);
  EXPECT_EQ(mesh.diameter(), 6u);
  // Corner has 2 neighbors, center has 4.
  EXPECT_EQ(mesh.neighbors(0).size(), 2u);
  EXPECT_EQ(mesh.neighbors(5).size(), 4u);
  EXPECT_TRUE(mesh.adjacent(0, 1));
  EXPECT_TRUE(mesh.adjacent(1, 5));
  EXPECT_FALSE(mesh.adjacent(0, 5));
  EXPECT_EQ(mesh.shortest_path(0, 15), 6u);
}

TEST(MeshTopology, RankOrderConsecutiveAdjacent) {
  for (MeshOrder order : {MeshOrder::kSnake, MeshOrder::kProximity}) {
    MeshTopology mesh(8, order);
    for (std::size_t r = 0; r + 1 < mesh.size(); ++r) {
      EXPECT_TRUE(mesh.adjacent(mesh.node_of_rank(r), mesh.node_of_rank(r + 1)))
          << to_string(order) << " rank " << r;
    }
    EXPECT_EQ(mesh.shift_rounds(), 1u);
  }
}

TEST(MeshTopology, ExchangeCostsScaleAsSqrtOffset) {
  MeshTopology mesh(16, MeshOrder::kShuffledRowMajor);  // 256 PEs
  // Offset 2^k partners lie 2^(k/2) apart in one lattice coordinate.
  for (unsigned k = 0; k < 8; ++k) {
    EXPECT_EQ(mesh.exchange_rounds(k), 1u << (k / 2)) << "k=" << k;
  }
  // Proximity order: same Theta, constant factor bounded (Hilbert locality).
  MeshTopology prox(16, MeshOrder::kProximity);
  for (unsigned k = 0; k < 8; ++k) {
    EXPECT_LE(prox.exchange_rounds(k), 6u * (1u << (k / 2))) << "k=" << k;
    EXPECT_GE(prox.exchange_rounds(k), 1u << (k / 2)) << "k=" << k;
  }
}

TEST(HypercubeTopology, StructureAndCosts) {
  HypercubeTopology cube(4);  // 16 nodes
  EXPECT_EQ(cube.size(), 16u);
  EXPECT_EQ(cube.diameter(), 4u);
  EXPECT_EQ(cube.neighbors(0).size(), 4u);
  EXPECT_TRUE(cube.adjacent(0b0000, 0b0100));
  EXPECT_FALSE(cube.adjacent(0b0000, 0b0110));
  // Gray order: consecutive ranks adjacent (string property).
  for (std::size_t r = 0; r + 1 < cube.size(); ++r) {
    EXPECT_TRUE(cube.adjacent(cube.node_of_rank(r), cube.node_of_rank(r + 1)));
  }
  EXPECT_EQ(cube.shift_rounds(), 1u);
  // Exchange between Gray ranks r and r^2^k: <= 2 hops.
  for (unsigned k = 0; k < 4; ++k) {
    EXPECT_LE(cube.exchange_rounds(k), 2u);
    EXPECT_GE(cube.exchange_rounds(k), 1u);
  }
  // Natural order: exactly one hop per exchange.
  HypercubeTopology nat(4, CubeOrder::kNatural);
  for (unsigned k = 0; k < 4; ++k) EXPECT_EQ(nat.exchange_rounds(k), 1u);
}

TEST(Factories, PaperSizes) {
  // Section 3: mesh of size 4^ceil(log4 n), hypercube of size 2^ceil(log2 n).
  auto mesh = make_mesh_for(5);
  EXPECT_EQ(mesh->size(), 16u);
  auto cube = make_hypercube_for(5);
  EXPECT_EQ(cube->size(), 8u);
  EXPECT_EQ(make_mesh_for(16)->size(), 16u);
  EXPECT_EQ(make_hypercube_for(16)->size(), 16u);
  EXPECT_EQ(make_mesh_for(17)->size(), 64u);
}

TEST(Fabric, CapacityEnforcedAndDelivery) {
  MeshTopology mesh(2);
  Fabric<int> fab(mesh);
  fab.send(0, 1, 7);
  fab.send(1, 0, 8);
  fab.deliver();
  ASSERT_EQ(fab.inbox(1).size(), 1u);
  EXPECT_EQ(fab.inbox(1)[0], 7);
  ASSERT_EQ(fab.inbox(0).size(), 1u);
  EXPECT_EQ(fab.inbox(0)[0], 8);
  EXPECT_EQ(fab.rounds(), 1u);
  EXPECT_DEATH(
      {
        Fabric<int> f2(mesh);
        f2.send(0, 1, 1);
        f2.send(0, 1, 2);  // second word on one directed link
      },
      "link capacity");
  EXPECT_DEATH(
      {
        Fabric<int> f3(mesh);
        f3.send(0, 3, 1);  // not a link
      },
      "non-link");
}

// Layer A validates Layer B's analytic exchange costs: routing the offset
// pattern hop-by-hop must take no more rounds than a small constant times
// the charge (and at least the charge's lower bound, the max distance).
class ExchangeCostValidation
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExchangeCostValidation, HopByHopMatchesCharge) {
  auto [which, k] = GetParam();
  std::shared_ptr<const Topology> topo;
  switch (which) {
    case 0: topo = std::make_shared<MeshTopology>(8, MeshOrder::kShuffledRowMajor); break;
    case 1: topo = std::make_shared<MeshTopology>(8, MeshOrder::kProximity); break;
    default: topo = std::make_shared<HypercubeTopology>(6); break;
  }
  if (static_cast<std::size_t>(1) << (k + 1) > topo->size()) GTEST_SKIP();
  std::vector<long> vals(topo->size());
  std::iota(vals.begin(), vals.end(), 0L);
  std::vector<long> expect(vals.size());
  for (std::size_t r = 0; r < vals.size(); ++r) {
    expect[r] = vals[r ^ (std::size_t{1} << k)];
  }
  std::uint64_t measured = fabric_reference::exchange_offset(
      *topo, static_cast<unsigned>(k), vals);
  EXPECT_EQ(vals, expect);
  std::uint64_t charged = topo->exchange_rounds(static_cast<unsigned>(k));
  EXPECT_GE(measured, charged) << "charge must lower-bound reality";
  EXPECT_LE(measured, 4 * charged + 2) << "congestion within documented bounds";
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExchangeCostValidation,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Range(0, 6)));

TEST(FabricReference, ShiftMatchesChargeOnProximityAndGray) {
  for (int which = 0; which < 2; ++which) {
    std::shared_ptr<const Topology> topo;
    if (which == 0) {
      topo = std::make_shared<MeshTopology>(4, MeshOrder::kProximity);
    } else {
      topo = std::make_shared<HypercubeTopology>(4);
    }
    std::vector<long> vals(topo->size());
    std::iota(vals.begin(), vals.end(), 0L);
    std::uint64_t rounds = fabric_reference::shift_up(*topo, vals, -1L);
    for (std::size_t r = 0; r < vals.size(); ++r) {
      EXPECT_EQ(vals[r], static_cast<long>(r) - 1);
    }
    EXPECT_EQ(rounds, topo->shift_rounds());
  }
}


TEST(MachineProfile, PhaseAttributionAndReport) {
  Machine m = Machine::hypercube_for(64);
  MachineProfile prof(m);
  {
    auto ph = prof.phase("exchanges");
    m.charge_exchange(0);
    m.charge_exchange(1);
  }
  {
    auto ph = prof.phase("shifts");
    m.charge_shift(5);
  }
  {
    auto ph = prof.phase("exchanges");  // aggregates with the first scope
    m.charge_exchange(0);
  }
  ASSERT_EQ(prof.entries().size(), 2u);
  const Topology& t = m.topology();
  EXPECT_EQ(prof.entries()[0].label, "exchanges");
  EXPECT_EQ(prof.entries()[0].cost.rounds,
            2 * t.exchange_rounds(0) + t.exchange_rounds(1));
  EXPECT_EQ(prof.entries()[1].cost.rounds, 5 * t.shift_rounds());
  EXPECT_EQ(prof.total().rounds, m.ledger().snapshot().rounds);
  std::string rep = prof.report();
  EXPECT_NE(rep.find("exchanges"), std::string::npos);
  EXPECT_NE(rep.find("shifts"), std::string::npos);
}

TEST(Machine, LedgerCharges) {
  Machine m = Machine::hypercube_for(16);  // Gray order
  EXPECT_EQ(m.size(), 16u);
  const Topology& t = m.topology();
  CostMeter meter(m.ledger());
  m.charge_exchange(0);
  m.charge_exchange(3);
  m.charge_shift(5);
  m.charge_local(7);
  CostSnapshot c = meter.elapsed();
  EXPECT_EQ(c.rounds, t.exchange_rounds(0) + t.exchange_rounds(3) +
                          5 * t.shift_rounds());
  EXPECT_EQ(c.rounds, 1u + 2u + 5u);  // Gray: offset-8 partners are 2 hops
  EXPECT_EQ(c.local_ops, 7u);
  EXPECT_EQ(c.time(), c.rounds + c.local_ops);
}

}  // namespace
}  // namespace dyncg
