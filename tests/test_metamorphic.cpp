// Metamorphic properties: transformations of the input with a known effect
// on the output.  These catch classes of bugs that oracle comparisons on a
// single instance cannot (coordinate-system dependence, hidden asymmetries,
// breakpoint bookkeeping).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dyncg/collision.hpp"
#include "dyncg/containment.hpp"
#include "dyncg/hull_membership.hpp"
#include "dyncg/proximity.hpp"
#include "pieces/envelope_serial.hpp"
#include "steady/steady_state.hpp"
#include "support/rng.hpp"

namespace dyncg {
namespace {

Polynomial time_scaled(const Polynomial& p, double c) {
  // p(c t): coefficient i scales by c^i.
  std::vector<double> out(static_cast<std::size_t>(p.degree()) + 1);
  double f = 1.0;
  for (int i = 0; i <= p.degree(); ++i) {
    out[static_cast<std::size_t>(i)] = p.coefficient(i) * f;
    f *= c;
  }
  return Polynomial(out);
}

MotionSystem transform(const MotionSystem& sys, double time_scale,
                       double rot, double tx, double ty) {
  std::vector<Trajectory> pts;
  double cr = std::cos(rot), sr = std::sin(rot);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    Polynomial x = time_scaled(sys.point(i).coordinate(0), time_scale);
    Polynomial y = time_scaled(sys.point(i).coordinate(1), time_scale);
    Polynomial nx = x * cr - y * sr + Polynomial::constant(tx);
    Polynomial ny = x * sr + y * cr + Polynomial::constant(ty);
    pts.push_back(Trajectory({nx, ny}));
  }
  return MotionSystem(2, std::move(pts));
}

TEST(Metamorphic, EnvelopeBreakpointsScaleWithTime) {
  Rng rng(5);
  std::vector<Polynomial> fns;
  for (int i = 0; i < 10; ++i) {
    fns.push_back(Polynomial(
        {rng.uniform(-3, 3), rng.uniform(-2, 2), rng.uniform(-1, 1)}));
  }
  PolyFamily fam(fns);
  PiecewiseFn env = lower_envelope_serial(fam);

  double c = 2.0;  // g_i(t) = f_i(c t): breakpoints divide by c
  std::vector<Polynomial> scaled;
  for (const auto& f : fns) scaled.push_back(time_scaled(f, c));
  PolyFamily fam2(std::move(scaled));
  PiecewiseFn env2 = lower_envelope_serial(fam2);

  ASSERT_EQ(env.piece_count(), env2.piece_count());
  for (std::size_t i = 0; i < env.pieces.size(); ++i) {
    EXPECT_EQ(env.pieces[i].id, env2.pieces[i].id);
    if (!std::isinf(env.pieces[i].iv.hi)) {
      EXPECT_NEAR(env2.pieces[i].iv.hi, env.pieces[i].iv.hi / c,
                  1e-7 * (1 + env.pieces[i].iv.hi));
    }
  }
}

TEST(Metamorphic, NeighborSequenceIsRigidMotionInvariant) {
  Rng rng(9);
  MotionSystem sys = random_motion_system(rng, 8, 2, 2);
  MotionSystem moved = transform(sys, 1.0, 0.83, 17.0, -5.0);
  Machine m1 = proximity_machine_mesh(sys);
  Machine m2 = proximity_machine_mesh(moved);
  NeighborSequence a = neighbor_sequence(m1, sys, 0);
  NeighborSequence b = neighbor_sequence(m2, moved, 0);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].neighbor, b.epochs[i].neighbor);
    EXPECT_NEAR(a.epochs[i].iv.lo, b.epochs[i].iv.lo,
                1e-6 * (1 + a.epochs[i].iv.lo));
  }
}

TEST(Metamorphic, CollisionTimesAreRigidMotionInvariantAndTimeScale) {
  Rng rng(11);
  MotionSystem sys = random_motion_system(rng, 10, 2, 2);
  Machine m1 = collision_machine_mesh(sys);
  CollisionReport base = collision_times(m1, sys, 0);

  MotionSystem rot = transform(sys, 1.0, 1.3, -4.0, 9.0);
  Machine m2 = collision_machine_mesh(rot);
  CollisionReport moved = collision_times(m2, rot, 0);
  ASSERT_EQ(base.events.size(), moved.events.size());
  for (std::size_t i = 0; i < base.events.size(); ++i) {
    EXPECT_NEAR(base.events[i].time, moved.events[i].time,
                1e-6 * (1 + base.events[i].time));
    EXPECT_EQ(base.events[i].other, moved.events[i].other);
  }

  MotionSystem fast = transform(sys, 3.0, 0.0, 0.0, 0.0);
  Machine m3 = collision_machine_mesh(fast);
  CollisionReport sped = collision_times(m3, fast, 0);
  ASSERT_EQ(base.events.size(), sped.events.size());
  for (std::size_t i = 0; i < base.events.size(); ++i) {
    EXPECT_NEAR(sped.events[i].time, base.events[i].time / 3.0,
                1e-6 * (1 + base.events[i].time));
  }
}

TEST(Metamorphic, HullMembershipIsRigidMotionInvariant) {
  Rng rng(13);
  MotionSystem sys = random_motion_system(rng, 7, 2, 1);
  MotionSystem moved = transform(sys, 1.0, 2.1, 100.0, -50.0);
  Machine m1 = hull_membership_machine_mesh(sys);
  Machine m2 = hull_membership_machine_mesh(moved);
  IntervalSet a = hull_membership_intervals(m1, sys, 0);
  IntervalSet b = hull_membership_intervals(m2, moved, 0);
  for (double t = 0.07; t < 40; t = t * 1.37 + 0.03) {
    // Skip near either solution's boundaries.
    bool near = false;
    for (const IntervalSet* s : {&a, &b}) {
      for (const Interval& iv : s->intervals()) {
        if (std::fabs(t - iv.lo) < 5e-3 ||
            (!std::isinf(iv.hi) && std::fabs(t - iv.hi) < 5e-3)) {
          near = true;
        }
      }
    }
    if (near) continue;
    EXPECT_EQ(a.contains(t), b.contains(t)) << "t=" << t;
  }
}

TEST(Metamorphic, ContainmentIsTranslationInvariantNotRotation) {
  Rng rng(17);
  MotionSystem sys = random_motion_system(rng, 8, 2, 1);
  MotionSystem shifted = transform(sys, 1.0, 0.0, 42.0, -17.0);
  Machine m1 = containment_machine_mesh(sys);
  Machine m2 = containment_machine_mesh(shifted);
  // Iso-oriented boxes are translation invariant...
  IntervalSet a = containment_intervals(m1, sys, {9.0, 7.0});
  IntervalSet b = containment_intervals(m2, shifted, {9.0, 7.0});
  for (double t = 0.05; t < 30; t = t * 1.5 + 0.02) {
    double margin =
        std::min(std::fabs(brute_force_spread(sys, 0, t) - 9.0),
                 std::fabs(brute_force_spread(sys, 1, t) - 7.0));
    if (margin < 1e-3) continue;
    EXPECT_EQ(a.contains(t), b.contains(t)) << t;
  }
  // ...and the smallest enclosing cube edge is too.
  Machine m3 = containment_machine_mesh(sys);
  Machine m4 = containment_machine_mesh(shifted);
  SmallestCube c1 = smallest_enclosing_cube(m3, sys);
  SmallestCube c2 = smallest_enclosing_cube(m4, shifted);
  EXPECT_NEAR(c1.edge, c2.edge, 1e-6 * (1 + c1.edge));
}

TEST(Metamorphic, PointPermutationOnlyRelabels) {
  Rng rng(19);
  MotionSystem sys = random_motion_system(rng, 9, 2, 2);
  // Permute the non-query points.
  std::vector<Trajectory> pts;
  pts.push_back(sys.point(0));
  auto perm = rng.permutation(8);
  std::vector<std::size_t> fwd(9);  // old -> new index
  fwd[0] = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    pts.push_back(sys.point(perm[i] + 1));
  }
  for (std::size_t i = 0; i < 8; ++i) fwd[perm[i] + 1] = i + 1;
  MotionSystem shuffled(2, std::move(pts));

  Machine m1 = proximity_machine_hypercube(sys);
  Machine m2 = proximity_machine_hypercube(shuffled);
  NeighborSequence a = neighbor_sequence(m1, sys, 0);
  NeighborSequence b = neighbor_sequence(m2, shuffled, 0);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(fwd[a.epochs[i].neighbor], b.epochs[i].neighbor) << i;
  }
}

TEST(Metamorphic, SteadyHullRotatesWithTheSystem) {
  Rng rng(23);
  MotionSystem sys = diverging_motion_system(rng, 10, 1);
  MotionSystem rot = transform(sys, 1.0, 0.77, 3.0, 4.0);
  auto a = steady_hull_ids(sys);
  auto b = steady_hull_ids(rot);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dyncg
