#!/bin/sh
# Serve smoke test: start dyncg_serve on an ephemeral port, answer a ping
# and one geometric query through dyncg_load, then shut the daemon down
# with SIGTERM and require a clean exit 0.
#
#   serve_smoke.sh DYNCG_SERVE DYNCG_LOAD
set -e
SERVE=$1
LOAD=$2
dir=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null
  rm -rf "$dir"
}
trap cleanup EXIT

"$SERVE" --port-file "$dir/port" &
pid=$!

printf '%s\n%s\n' \
  '{"op":"ping","id":1}' \
  '{"op":"neighbor","id":2,"scenario":{"n":6,"k":1}}' > "$dir/req"
"$LOAD" --port-file "$dir/port" --send "$dir/req" > "$dir/resp"

grep -q '"result":"pong"' "$dir/resp"
grep -c '"status":"OK"' "$dir/resp" | grep -qx 2

kill -TERM "$pid"
wait "$pid"   # set -e: a non-zero daemon exit fails the test
pid=
