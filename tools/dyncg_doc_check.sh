#!/bin/sh
# Doc drift gate (ctest: doc_check).  Two invariants over README.md and
# docs/*.md:
#
#   1. every `--flag` the docs mention is accepted by some repo binary —
#      scraped live from the usage text each binary prints on a bad
#      invocation, so renaming or deleting a flag fails this test until its
#      documentation follows (plus a short allowlist for external tools:
#      cmake/ctest/google-benchmark);
#   2. every `bench_*` target/test name the docs mention still exists as a
#      bench source, a CMake target, a ctest name, or a fixture;
#   3. every protocol op the server accepts (`dyncg_serve --list-ops`) is
#      documented in docs/SERVING.md — adding an op without wire docs fails.
#
#   dyncg_doc_check.sh SRC_DIR CLI SERVE LOAD JSON_CHECK BENCH_DIFF
set -e
SRC=$1
shift
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
rc=0

# --- 1. flags -------------------------------------------------------------
for bin in "$@"; do
  "$bin" --totally-unknown-flag 2>&1 || true
done | grep -oE -- '--[a-z][a-z0-9_-]*' | sort -u > "$dir/flags"
# External tools the docs legitimately reference.
cat >> "$dir/flags" <<'EOF'
--build
--preset
--target
--test-dir
--output-on-failure
--benchmark_min_time
EOF

for tok in $(grep -hoE -- '--[a-z][a-z0-9_-]*' "$SRC/README.md" \
               "$SRC"/docs/*.md | sort -u); do
  if ! grep -qx -- "$tok" "$dir/flags"; then
    echo "doc drift: documented flag $tok is accepted by no binary" >&2
    rc=1
  fi
done

# --- 2. bench targets / test names ---------------------------------------
{
  ls "$SRC/bench" | sed -n 's/\.cpp$//p'
  echo bench_all
  echo dyncg_bench_diff
  grep -hoE 'NAME [A-Za-z0-9_]+' "$SRC"/bench/CMakeLists.txt \
    "$SRC"/tools/CMakeLists.txt "$SRC"/tests/CMakeLists.txt |
    sed 's/^NAME //'
  grep -hoE 'FIXTURES_[A-Z]+ [A-Za-z0-9_]+' "$SRC"/bench/CMakeLists.txt \
    "$SRC"/tools/CMakeLists.txt "$SRC"/tests/CMakeLists.txt |
    sed 's/^FIXTURES_[A-Z]* //'
} > "$dir/targets"

for tok in $(grep -hoE 'bench_[a-z0-9_]+' "$SRC/README.md" \
               "$SRC"/docs/*.md | sort -u); do
  if ! grep -q -- "$tok" "$dir/targets"; then
    echo "doc drift: documented bench target $tok does not exist" >&2
    rc=1
  fi
done

# --- 3. protocol ops ------------------------------------------------------
SERVE=$2
for op in $("$SERVE" --list-ops); do
  if ! grep -qw -- "$op" "$SRC/docs/SERVING.md"; then
    echo "doc drift: protocol op '$op' is not documented in docs/SERVING.md" >&2
    rc=1
  fi
done

exit $rc
