#!/bin/sh
# Resilience gate (ctest: serve_chaos; docs/ROBUSTNESS.md#serving-resilience).
# Three phases against real servers on ephemeral ports:
#
#   1. chaos — dyncg_chaos drives a tightly-capped server (queue cap 8,
#      512-byte lines, 4 KiB output buffers, 500 ms deadlines, 2 s stall
#      reaper) through a fixed-seed schedule of socket abuse.  The harness
#      itself asserts no crash/deadlock, exactly one response per accepted
#      request, oracle-identical bytes on every completed result, and the
#      accounting identity requests == ok + errors + shed +
#      deadline_exceeded.  The script additionally bounds the server's RSS
#      and requires the shed and output-overflow defenses to have actually
#      fired (a chaos run that never triggers them tests nothing).
#
#   2. exit-8 pin — dyncg_load pipelines several seconds of uncacheable
#      work, the server is SIGINTed mid-stream, and the load client must
#      exit with its pinned code 8 ("server closed the connection") and
#      name the last unanswered request — the regression test for the old
#      behaviour of dying silently with a generic I/O error.
#
#   3. drain under load — dyncg_load streams ~15 s of sequential queries at
#      a fresh server; SIGTERM arrives at +1 s.  The server must report
#      draining, finish within the drain budget, and exit 0; the client
#      must fail attributably with exit 8 when the drained server closes
#      its connection — never a crash, never exit 0 (the run was cut short
#      by construction).  (The UNAVAILABLE {"draining":true} response is
#      pinned deterministically by the in-process server tests; whether
#      this client catches one here is a race against the drain finishing.)
#
#   serve_chaos.sh DYNCG_SERVE DYNCG_CHAOS DYNCG_LOAD
set -e
SERVE=$1
CHAOS=$2
LOAD=$3
dir=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
  rm -rf "$dir"
}
trap cleanup EXIT

wait_port() {
  i=0
  while [ ! -s "$1" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "serve_chaos: server never wrote $1" >&2; exit 1; }
    sleep 0.1
  done
}

counter() {  # counter FILE NAME -> value (0 when absent)
  sed 's/},/}\n/g' "$1" | sed -n "s/.*\"name\":\"$2\"[^}]*\"value\":\([0-9]*\).*/\1/p"
}

# --- phase 1: fixed-seed chaos against a tightly-capped server --------------
"$SERVE" --port-file "$dir/port" --queue-cap 8 --batch-cap 4 --max-line 512 \
  --max-conns 32 --deadline-ms 500 --stall-timeout-ms 2000 \
  --max-out-buf 4096 --cache-cap 16 --drain-ms 4000 \
  --metrics-out "$dir/metrics.json" --metrics-interval 1 \
  2> "$dir/serve1.log" &
pid=$!
wait_port "$dir/port"

"$CHAOS" --port-file "$dir/port" --seed 20260809 --rounds 64 --max-line 512 \
  --timeout-ms 60000 --oracle 2> "$dir/chaos.log" || {
  cat "$dir/chaos.log" >&2
  exit 1
}

# RSS bound: tight caps mean absorbing the abuse cannot cost unbounded
# memory.  128 MiB is ~6x headroom over the ~20 MiB observed.
rss_kb=$(awk '/VmRSS/ { print $2 }' "/proc/$pid/status")
if [ -z "$rss_kb" ] || [ "$rss_kb" -ge 131072 ]; then
  echo "serve_chaos: server RSS ${rss_kb:-?} kB exceeds the 131072 kB bound" >&2
  exit 1
fi

kill -TERM "$pid"
wait "$pid"   # set -e: drain must exit 0
pid=

# The run only counts if the defenses it is meant to exercise fired.
shed=$(counter "$dir/metrics.json" serve.shed)
overflow=$(counter "$dir/metrics.json" serve.conn.overflow)
if [ -z "$shed" ] || [ "$shed" -eq 0 ]; then
  echo "serve_chaos: chaos run never triggered load shedding" >&2
  exit 1
fi
if [ -z "$overflow" ] || [ "$overflow" -eq 0 ]; then
  echo "serve_chaos: chaos run never triggered the output-buffer cap" >&2
  exit 1
fi

# --- phase 2: SIGINT mid-stream pins dyncg_load exit code 8 -----------------
# 400 distinct-seed queries with the cache off is several seconds of
# compute; SIGINT after 1 s is guaranteed to land mid-stream.
awk 'BEGIN {
  for (i = 1; i <= 400; i++)
    printf "{\"op\":\"neighbor\",\"id\":%d,\"scenario\":{\"seed\":%d,\"n\":1024,\"k\":2}}\n", i, i
}' > "$dir/burst"

"$SERVE" --port-file "$dir/port2" --cache-cap 0 2> "$dir/serve2.log" &
pid=$!
wait_port "$dir/port2"

rc=0
"$LOAD" --port-file "$dir/port2" --send "$dir/burst" --pipeline \
  > /dev/null 2> "$dir/load2.log" &
load_pid=$!
sleep 1
kill -INT "$pid"
wait "$pid"
pid=
wait "$load_pid" || rc=$?
if [ "$rc" -ne 8 ]; then
  cat "$dir/load2.log" >&2
  echo "serve_chaos: expected dyncg_load exit 8 on server close, got $rc" >&2
  exit 1
fi
grep -q "last unanswered request" "$dir/load2.log" || {
  echo "serve_chaos: dyncg_load did not name the last unanswered request" >&2
  exit 1
}

# --- phase 3: SIGTERM drain under live load ---------------------------------
# Distinct seeds defeat the cache: ~15 s of sequential round trips, so
# SIGTERM at +1 s is guaranteed to land mid-stream, with at most one
# request in flight for the drain to finish.
awk 'BEGIN {
  for (i = 1; i <= 2000; i++)
    printf "{\"op\":\"neighbor\",\"id\":%d,\"scenario\":{\"seed\":%d,\"n\":1024,\"k\":2}}\n", i, i
}' > "$dir/burst3"

"$SERVE" --port-file "$dir/port3" --drain-ms 5000 2> "$dir/serve3.log" &
pid=$!
wait_port "$dir/port3"

rc=0
"$LOAD" --port-file "$dir/port3" --send "$dir/burst3" \
  > /dev/null 2> "$dir/load3.log" &
load_pid=$!
sleep 1
t0=$(date +%s)
kill -TERM "$pid"
wait "$pid"   # set -e: the drain itself must exit 0
pid=
t1=$(date +%s)
if [ $((t1 - t0)) -gt 8 ]; then
  echo "serve_chaos: drain took $((t1 - t0)) s, over the 5 s budget + slack" >&2
  exit 1
fi
grep -q "draining" "$dir/serve3.log" || {
  echo "serve_chaos: server never reported draining" >&2
  exit 1
}
wait "$load_pid" || rc=$?
if [ "$rc" -ne 8 ]; then
  cat "$dir/load3.log" >&2
  echo "serve_chaos: expected dyncg_load exit 8 after the drain closed its"\
    "connection, got $rc" >&2
  exit 1
fi

echo "serve_chaos: ok"
