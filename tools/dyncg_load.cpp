// dyncg_load — load generator, correctness oracle, and bench reporter for
// dyncg_serve (docs/SERVING.md#load).
//
//   dyncg_load (--port N | --port-file PATH) [mode options]
//
// Bench mode (default): sends a deterministic grid of queries — every op in
// --ops × --scenarios generated scenarios, the whole grid repeated
// --repeats times — as sequential round-trips on ONE connection, so the
// server's FIFO cache sees a fully deterministic request stream: misses =
// ops × scenarios on the first pass, hits everywhere after.  Scenario i
// uses seed i+1 and n = --n << i (a size sweep, so per-op rounds give a
// log-log slope).  Afterwards `stats` and `metrics` requests fetch the
// server's counters and full metrics registry, and the run is written as
// BENCH_serve.json (--json PATH): schema v2 with the usual deterministic
// `tables` (per-op simulated rounds over the n sweep, plus exact hit/miss
// counter rows), exact simulated-cost percentiles (sim_rounds_p50/p99) and
// the embedded `metrics` registry — all gated by dyncg_bench_diff — and
// host-noisy `serve` figures (rps, p50/p99 latency) that the gate
// deliberately ignores.
//
// Script mode (--send FILE): sends FILE's raw lines verbatim, writes one
// response line per non-empty request line to stdout (or --results-out).
// With --decode, writes each OK response's decoded `result` text instead —
// i.e. exactly the bytes dyncg_cli prints for the same scenario minus its
// cost line — and fails (exit 5) on any non-OK response; this is what the
// e2e test diffs against real CLI output.  With --pipeline, every line is
// sent before the first response is read — one multi-request burst, so the
// server actually forms multi-request batches (the determinism fixture
// uses this to exercise parallel batch compute).
//
// Either mode, --oracle: every OK response's `result` is byte-compared
// against an in-process recompute through the same serve::run_query the
// server uses; a mismatch means the daemon served wrong bytes and exits 7.
//
// Stream mode (--stream N): opens one fleet session (d=2, k=1, --machine)
// and drives N seeded randomized fleet_update batches — inserts (sometimes
// duplicating a live trajectory to exercise dedupe), erases, and monotone
// advances — mirroring the member set client-side.  All coefficients are
// small integers and advances are multiples of 1/1024, so every value
// round-trips exactly through the JSON wire.  Every few steps (and at the
// end) a fleet_query is byte-compared against an in-process from-scratch
// oracle (envelope/dynamic_envelope.hpp canonical_rebuild over the mirrored
// members): `result` and the fingerprint `key` must match exactly, or the
// maintained merge tree diverged from the rebuild contract — exit 7.
// Update-latency percentiles (p50/p99 ms, host-noisy) print at the end.
//
// Options:
//   --port N           connect to 127.0.0.1:N
//   --port-file PATH   read the port from PATH (written by dyncg_serve)
//   --ops a,b,c        bench ops                (default neighbor,pairs,
//                                                collisions)
//   --scenarios S      scenarios per op         (default 3)
//   --repeats R        grid repetitions         (default 3)
//   --n N              base scenario size       (default 8)
//   --machine M        mesh|hypercube           (default mesh)
//   --json PATH        write BENCH_serve.json   (default: off)
//   --send FILE        script mode (see above)
//   --results-out F    script-mode responses to F instead of stdout
//   --decode           script mode: write decoded result text, not JSON
//   --pipeline         script mode: send every line before reading replies
//   --oracle           verify results against in-process recompute
//   --stream N         fleet-session stream mode (see above): N update
//                      batches, oracle-checked queries, exit 7 on mismatch
//   --seed S           stream-mode RNG seed      (default 1)
//   --threads T        host threads for the oracle recompute
//
// Exit codes: 0 ok; 1 I/O (connect / file); 2 usage; 5 malformed response;
// 7 oracle mismatch; 8 the server closed the connection mid-run (EOF or
// EPIPE after at least one request went out — e.g. it was SIGTERMed and
// drained, or it dropped this client as stalled; the last unanswered
// request is printed so the failure is attributable).  SIGPIPE is ignored
// so a write into a dead socket reports code 8 instead of killing the
// process silently.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dyncg/motion.hpp"
#include "envelope/dynamic_envelope.hpp"
#include "envelope/scenario_key.hpp"
#include "poly/kernels.hpp"
#include "serve/engine.hpp"
#include "serve/fleet.hpp"
#include "serve/protocol.hpp"
#include "support/build_info.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace dyncg;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: dyncg_load (--port N | --port-file PATH) "
               "[--ops a,b,c] [--scenarios S] [--repeats R] [--n N] "
               "[--machine mesh|hypercube] [--json PATH] [--send FILE] "
               "[--results-out FILE] [--decode] [--pipeline] [--oracle] "
               "[--stream N] [--seed S] [--threads T]\n");
  std::exit(2);
}

long parse_long(const std::string& flag, const char* tok, long min_value,
                long max_value) {
  char* end = nullptr;
  long v = std::strtol(tok, &end, 10);
  if (end == tok || *end != '\0' || v < min_value || v > max_value) {
    std::fprintf(stderr,
                 "error: %s expects an integer in [%ld, %ld], got '%s'\n",
                 flag.c_str(), min_value, max_value, tok);
    usage();
  }
  return v;
}

// Blocking line-oriented client socket.
class Client {
 public:
  bool connect_to(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    // The server may still be between fork and listen; retry briefly.
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        return true;
      }
      usleep(100 * 1000);
    }
    return false;
  }
  ~Client() {
    if (fd_ >= 0) close(fd_);
  }

  bool send_line(const std::string& line) {
    std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
      ssize_t n = write(fd_, out.data() + off, out.size() - off);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_line(std::string* line) {
    for (;;) {
      std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[65536];
      ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct ResponseFacts {
  bool ok = false;
  bool hit = false;
  double rounds = 0;
  std::string result;
};

bool read_response(const std::string& line, ResponseFacts* out) {
  json::Value v;
  if (!json::parse(line, &v) || !v.is_object()) return false;
  const json::Value* status = v.find("status");
  if (status == nullptr || !status->is_string()) return false;
  out->ok = status->string == "OK";
  if (!out->ok) return true;  // error responses carry no result/cost
  const json::Value* cache = v.find("cache");
  out->hit = cache != nullptr && cache->string == "hit";
  if (const json::Value* cost = v.find("cost")) {
    if (const json::Value* rounds = cost->find("rounds")) {
      out->rounds = rounds->number;
    }
  }
  if (const json::Value* result = v.find("result")) {
    out->result = result->string;
  }
  return true;
}

// The server hung up (EOF on read, EPIPE on write) with `request_line`
// still unanswered.  Distinct from never connecting (exit 1): the run was
// under way, so the caller needs to know exactly where it stopped.  The
// pinned exit code is 8 (docs/SERVING.md#load).
int connection_lost(const std::string& request_line) {
  std::string what = request_line;
  json::Value v;
  if (json::parse(request_line, &v) && v.is_object()) {
    if (const json::Value* id = v.find("id")) {
      if (id->is_string()) {
        what = "id \"" + id->string + "\"";
      } else if (id->is_number()) {
        json::Writer w;
        w.value(id->number);
        what = "id " + w.str();
      }
    }
  }
  if (what.size() > 200) what = what.substr(0, 200) + "...";
  std::fprintf(stderr,
               "error: server closed the connection; "
               "last unanswered request: %s\n",
               what.c_str());
  return 8;
}

// --oracle: recompute the request in-process and byte-compare.
bool oracle_check(const std::string& request_line,
                  const ResponseFacts& facts) {
  StatusOr<serve::Request> req = serve::parse_request(request_line);
  if (!req.is_ok()) return !facts.ok;  // both sides must reject
  const serve::Request& r = req.value();
  if (serve::is_admin_op(r.op)) return true;
  StatusOr<serve::CachedResult> want = serve::run_query(r);
  if (!want.is_ok()) return !facts.ok;
  return facts.ok && facts.result == want.value().text;
}

// ---- stream mode helpers ----

// %.17g, so every double placed on the wire parses back to the same bits
// (the stream generator only emits integers and 1/1024 multiples anyway).
std::string exact_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// A fleet member for the session's d=2, k=1 shape: two affine coordinates
// with small integer coefficients — exact on the wire and cheap to cross.
Trajectory random_stream_point(Rng& rng) {
  std::vector<Polynomial> coords;
  for (int c = 0; c < 2; ++c) {
    coords.push_back(Polynomial(
        {static_cast<double>(rng.uniform_int(-8, 8)),
         static_cast<double>(rng.uniform_int(-4, 4))}));
  }
  return Trajectory(std::move(coords));
}

void append_point_json(std::string* out, const Trajectory& t) {
  *out += '[';
  for (std::size_t c = 0; c < t.dimension(); ++c) {
    if (c > 0) *out += ',';
    *out += '[';
    const Polynomial& poly = t.coordinate(c);
    for (int i = 0; i <= std::max(poly.degree(), 0); ++i) {
      if (i > 0) *out += ',';
      *out += exact_num(poly.coefficient(i));
    }
    *out += ']';
  }
  *out += ']';
}

// Byte-compare one fleet_query response against the from-scratch oracle
// over the mirrored member set.  A divergence here is the failure the whole
// mode exists to catch: the server's maintained merge tree no longer equals
// the canonical rebuild.
bool stream_oracle_check(const std::string& response,
                         const std::map<std::uint64_t, Trajectory>& mirror,
                         const Trajectory& ref, double now) {
  json::Value v;
  if (!json::parse(response, &v)) return false;
  const json::Value* result = v.find("result");
  const json::Value* key = v.find("key");
  if (result == nullptr || !result->is_string() || key == nullptr ||
      !key->is_string()) {
    return false;
  }
  std::vector<std::pair<std::uint64_t, Polynomial>> members;
  members.reserve(mirror.size());
  for (const auto& [id, point] : mirror) {
    members.emplace_back(id, serve::fleet_score(point, ref));
  }
  DynamicEnvelope oracle = canonical_rebuild(members, now, /*take_min=*/true,
                                             serve::fleet_s_bound(1));
  return result->string == oracle.result_string() &&
         key->string == fingerprint_hex(oracle.state_fingerprint());
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

// Exact percentile over integer simulated-cost figures: the same
// nearest-rank rule as percentile(), but the selected value is returned
// untouched — no floating arithmetic on the figures themselves, so the
// result is byte-exact across runs and thread counts.
std::uint64_t percentile_u64(const std::vector<std::uint64_t>& sorted,
                             double p) {
  if (sorted.empty()) return 0;
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string stamp_git_rev() {
#if defined(DYNCG_SOURCE_DIR)
  const char* src = DYNCG_SOURCE_DIR;
#else
  const char* src = nullptr;
#endif
#if defined(DYNCG_GIT_REV)
  const char* baked = DYNCG_GIT_REV;
#else
  const char* baked = nullptr;
#endif
  return git_revision(src, baked);
}

}  // namespace

int main(int argc, char** argv) {
  // A server that drains or drops this client mid-run must surface as exit
  // code 8 with the unanswered request printed — not as a silent SIGPIPE
  // death halfway through a script.
  std::signal(SIGPIPE, SIG_IGN);
  // Resolve the numeric-kernel dispatch up front so a typo'd DYNCG_SIMD is
  // a usage error here, not a mid-run abort in the oracle recompute.
  if (Status s = kernels::init_simd_from_env(); !s.is_ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 2;
  }
  int port = -1;
  std::string port_file;
  std::vector<std::string> ops = {"neighbor", "pairs", "collisions"};
  std::size_t scenarios = 3;
  std::size_t repeats = 3;
  std::size_t base_n = 8;
  std::string machine = "mesh";
  std::string json_out;
  std::string send_file;
  std::string results_out;
  bool decode = false;
  bool pipeline = false;
  bool oracle = false;
  std::size_t stream_steps = 0;
  std::uint64_t stream_seed = 1;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (std::size_t eq = a.find('='); eq != std::string::npos) {
      inline_value = a.substr(eq + 1);
      a = a.substr(0, eq);
      has_inline = true;
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        usage();
      }
      return argv[++i];
    };
    if (a == "--port") {
      port = static_cast<int>(parse_long(a, next().c_str(), 1, 65535));
    } else if (a == "--port-file") {
      port_file = next();
    } else if (a == "--ops") {
      ops.clear();
      std::string spec = next();
      std::stringstream ss(spec);
      std::string op;
      while (std::getline(ss, op, ',')) {
        if (op != "neighbor" && op != "pairs" && op != "collisions" &&
            op != "hullwhen" && op != "contain" && op != "steady") {
          std::fprintf(stderr, "error: unknown op '%s'\n", op.c_str());
          usage();
        }
        ops.push_back(op);
      }
      if (ops.empty()) usage();
    } else if (a == "--scenarios") {
      scenarios =
          static_cast<std::size_t>(parse_long(a, next().c_str(), 1, 8));
    } else if (a == "--repeats") {
      repeats =
          static_cast<std::size_t>(parse_long(a, next().c_str(), 1, 1000));
    } else if (a == "--n") {
      base_n =
          static_cast<std::size_t>(parse_long(a, next().c_str(), 2, 512));
    } else if (a == "--machine") {
      machine = next();
      if (machine != "mesh" && machine != "hypercube") usage();
    } else if (a == "--json") {
      json_out = next();
    } else if (a == "--send") {
      send_file = next();
    } else if (a == "--results-out") {
      results_out = next();
    } else if (a == "--decode") {
      decode = true;
    } else if (a == "--pipeline") {
      pipeline = true;
    } else if (a == "--oracle") {
      oracle = true;
    } else if (a == "--stream") {
      stream_steps =
          static_cast<std::size_t>(parse_long(a, next().c_str(), 1, 100000));
    } else if (a == "--seed") {
      // Same 2^40 cap as scenario seeds on the wire.
      stream_seed = static_cast<std::uint64_t>(
          parse_long(a, next().c_str(), 0, 1L << 40));
    } else if (a == "--threads") {
      set_host_threads(
          static_cast<unsigned>(parse_long(a, next().c_str(), 0, 1024)));
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a.c_str());
      usage();
    }
  }

  if (port < 0 && port_file.empty()) usage();
  if (port < 0) {
    // The server writes the file after binding; poll briefly.
    for (int attempt = 0; attempt < 100 && port < 0; ++attempt) {
      std::ifstream in(port_file);
      int p = 0;
      if (in >> p && p > 0) {
        port = p;
        break;
      }
      usleep(100 * 1000);
    }
    if (port < 0) {
      std::fprintf(stderr, "error: no port in %s\n", port_file.c_str());
      return 1;
    }
  }

  Client client;
  if (!client.connect_to(port)) {
    std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%d\n", port);
    return 1;
  }

  // ---- script mode ----
  if (!send_file.empty()) {
    std::ifstream in(send_file);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", send_file.c_str());
      return 1;
    }
    std::FILE* out = stdout;
    if (!results_out.empty()) {
      out = std::fopen(results_out.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     results_out.c_str());
        return 1;
      }
    }
    // With --pipeline every request goes out before the first response is
    // read; responses come back in request order (one connection, FIFO
    // replay), so the processing loop below is identical either way.
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    int rc = 0;
    if (pipeline) {
      for (const std::string& l : lines) {
        if (!client.send_line(l)) {
          rc = connection_lost(l);
          break;
        }
      }
    }
    for (std::size_t li = 0; li < lines.size() && rc == 0; ++li) {
      line = lines[li];
      std::string response;
      if ((!pipeline && !client.send_line(line)) ||
          !client.recv_line(&response)) {
        // In pipeline mode lines[li] is the oldest request still awaiting
        // its response — exactly the one the server never answered.
        rc = connection_lost(line);
        break;
      }
      ResponseFacts facts;
      if ((decode || oracle) && !read_response(response, &facts)) {
        std::fprintf(stderr, "error: malformed response: %s\n",
                     response.c_str());
        rc = 5;
        break;
      }
      if (decode) {
        if (!facts.ok) {
          std::fprintf(stderr, "error: request failed: %s\n",
                       response.c_str());
          rc = 5;
          break;
        }
        std::fwrite(facts.result.data(), 1, facts.result.size(), out);
      } else {
        std::fprintf(out, "%s\n", response.c_str());
      }
      if (oracle) {
        if (!oracle_check(line, facts)) {
          std::fprintf(stderr, "error: oracle mismatch for: %s\n",
                       line.c_str());
          rc = 7;
          break;
        }
      }
    }
    if (out != stdout) std::fclose(out);
    return rc;
  }

  // ---- stream mode ----
  if (stream_steps > 0) {
    Rng rng(stream_seed);
    const Trajectory ref = serve::fleet_origin(2);
    std::map<std::uint64_t, Trajectory> mirror;  // id -> trajectory
    std::vector<std::uint64_t> live_ids;         // sampling without scans
    double now = 0.0;
    std::uint64_t next_member = 1;
    std::uint64_t inserts = 0, erases = 0, advances = 0, checks = 0;
    std::vector<double> update_ms;
    using clock = std::chrono::steady_clock;

    auto round_trip_ok = [&](const std::string& line,
                             std::string* response) -> bool {
      if (!client.send_line(line) || !client.recv_line(response)) {
        std::exit(connection_lost(line));
      }
      json::Value v;
      const json::Value* status = nullptr;
      if (!json::parse(*response, &v) ||
          (status = v.find("status")) == nullptr || !status->is_string()) {
        std::fprintf(stderr, "error: malformed response: %s\n",
                     response->c_str());
        std::exit(5);
      }
      return status->string == "OK";
    };

    std::string response;
    std::string open = "{\"op\":\"fleet_open\",\"d\":2,\"k\":1,\"machine\":\"" +
                       machine + "\"}";
    if (!round_trip_ok(open, &response)) {
      std::fprintf(stderr, "error: fleet_open failed: %s\n",
                   response.c_str());
      return 5;
    }
    std::string fleet;
    {
      json::Value v;
      json::parse(response, &v);
      const json::Value* name = v.find("fleet");
      if (name == nullptr || !name->is_string()) {
        std::fprintf(stderr, "error: fleet_open response has no name: %s\n",
                     response.c_str());
        return 5;
      }
      fleet = name->string;
    }

    auto query_and_check = [&]() {
      std::string q =
          "{\"op\":\"fleet_query\",\"fleet\":\"" + fleet + "\"}";
      if (!round_trip_ok(q, &response)) {
        std::fprintf(stderr, "error: fleet_query failed: %s\n",
                     response.c_str());
        std::exit(5);
      }
      if (!stream_oracle_check(response, mirror, ref, now)) {
        std::fprintf(stderr,
                     "error: fleet oracle mismatch at t=%.17g with %zu "
                     "members: %s\n",
                     now, mirror.size(), response.c_str());
        std::exit(7);
      }
      ++checks;
    };

    for (std::size_t step = 0; step < stream_steps; ++step) {
      // Compose one update batch: mostly inserts early, erase-heavy once
      // the fleet is large, advances throughout.  Batches may mix all
      // three ops — exactly the traffic the atomic-apply contract covers.
      std::string ins_json;
      std::string erase_json;
      bool do_advance = false;
      int roll = rng.uniform_int(0, 99);
      if (mirror.size() > 256) roll = 55;  // force pressure relief
      if (mirror.empty() || roll < 45) {
        int count = rng.uniform_int(1, 3);
        for (int i = 0; i < count; ++i) {
          std::uint64_t id = next_member++;
          Trajectory point =
              (!live_ids.empty() && rng.uniform_int(0, 9) == 0)
                  ? mirror[live_ids[static_cast<std::size_t>(rng.uniform_int(
                        0, static_cast<int>(live_ids.size()) - 1))]]
                  : random_stream_point(rng);
          if (!ins_json.empty()) ins_json += ',';
          ins_json += "{\"id\":" + std::to_string(id) + ",\"point\":";
          append_point_json(&ins_json, point);
          ins_json += '}';
          mirror.emplace(id, std::move(point));
          live_ids.push_back(id);
          ++inserts;
        }
      } else if (roll < 70) {
        int count = std::min<int>(rng.uniform_int(1, 2),
                                  static_cast<int>(live_ids.size()));
        for (int i = 0; i < count; ++i) {
          std::size_t pick = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(live_ids.size()) - 1));
          std::uint64_t id = live_ids[pick];
          live_ids[pick] = live_ids.back();
          live_ids.pop_back();
          mirror.erase(id);
          if (!erase_json.empty()) erase_json += ',';
          erase_json += std::to_string(id);
          ++erases;
        }
      } else {
        do_advance = true;
      }
      if (!do_advance && rng.uniform_int(0, 3) == 0) do_advance = true;
      if (do_advance) {
        now += static_cast<double>(rng.uniform_int(1, 512)) / 1024.0;
        ++advances;
      }

      std::string line = "{\"op\":\"fleet_update\",\"fleet\":\"" + fleet + "\"";
      if (!ins_json.empty()) line += ",\"insert\":[" + ins_json + "]";
      if (!erase_json.empty()) line += ",\"erase\":[" + erase_json + "]";
      if (do_advance) line += ",\"advance\":" + exact_num(now);
      line += '}';

      const clock::time_point a = clock::now();
      bool ok = round_trip_ok(line, &response);
      update_ms.push_back(
          std::chrono::duration<double, std::milli>(clock::now() - a)
              .count());
      if (!ok) {
        std::fprintf(stderr, "error: fleet_update failed: %s\n",
                     response.c_str());
        return 5;
      }
      {
        // The response's member count and exact session time must track
        // the mirror — catching drift immediately, not at the next query.
        json::Value v;
        json::parse(response, &v);
        const json::Value* m = v.find("members");
        const json::Value* t = v.find("t");
        if (m == nullptr || !m->is_number() ||
            static_cast<std::size_t>(m->number) != mirror.size() ||
            t == nullptr || !t->is_string() ||
            std::strtod(t->string.c_str(), nullptr) != now) {
          std::fprintf(stderr, "error: fleet state drift after: %s\n -> %s\n",
                       line.c_str(), response.c_str());
          return 7;
        }
      }
      if (step % 8 == 7) query_and_check();
    }
    query_and_check();
    if (!round_trip_ok(
            "{\"op\":\"fleet_close\",\"fleet\":\"" + fleet + "\"}",
            &response)) {
      std::fprintf(stderr, "error: fleet_close failed: %s\n",
                   response.c_str());
      return 5;
    }

    std::sort(update_ms.begin(), update_ms.end());
    std::fprintf(stderr,
                 "dyncg_load: stream seed %llu: %zu updates "
                 "(%llu inserts, %llu erases, %llu advances), %llu oracle "
                 "checks OK, update p50 %.3fms p99 %.3fms\n",
                 static_cast<unsigned long long>(stream_seed), stream_steps,
                 static_cast<unsigned long long>(inserts),
                 static_cast<unsigned long long>(erases),
                 static_cast<unsigned long long>(advances),
                 static_cast<unsigned long long>(checks),
                 percentile(update_ms, 0.50), percentile(update_ms, 0.99));
    return 0;
  }

  // ---- bench mode ----
  struct Probe {
    std::string op;
    std::size_t scenario;  // index: seed = i+1, n = base_n << i
    std::string line;      // request JSON
    double rounds = 0;     // from the first (miss) response
  };
  std::vector<Probe> grid;
  for (const std::string& op : ops) {
    for (std::size_t s = 0; s < scenarios; ++s) {
      json::Writer w;
      w.begin_object();
      w.key("op");
      w.value(op);
      w.key("scenario");
      w.begin_object();
      w.key("seed");
      w.value(static_cast<std::uint64_t>(s + 1));
      w.key("n");
      w.value(static_cast<std::uint64_t>(base_n << s));
      if (op != "steady") {
        w.key("d");
        w.value(std::uint64_t{2});
      }
      w.key("k");
      w.value(std::uint64_t{2});
      w.end_object();
      w.key("machine");
      w.value(machine);
      w.end_object();
      grid.push_back(Probe{op, s, w.str(), 0});
    }
  }

  using clock = std::chrono::steady_clock;
  const clock::time_point t0 = clock::now();
  std::vector<double> latency_ms;
  // Simulated rounds of EVERY response (hits replay the cached cost, so
  // each of the repeats contributes): a pure function of the request grid,
  // hence byte-exact percentiles for the bench gate.
  std::vector<std::uint64_t> sim_rounds;
  std::uint64_t sent = 0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    for (Probe& p : grid) {
      const clock::time_point a = clock::now();
      std::string response;
      if (!client.send_line(p.line) || !client.recv_line(&response)) {
        return connection_lost(p.line);
      }
      latency_ms.push_back(
          std::chrono::duration<double, std::milli>(clock::now() - a)
              .count());
      ++sent;
      ResponseFacts facts;
      if (!read_response(response, &facts) || !facts.ok) {
        std::fprintf(stderr, "error: request failed: %s\n",
                     response.c_str());
        return 5;
      }
      bool expect_hit = rep > 0;
      if (facts.hit != expect_hit) {
        std::fprintf(stderr, "error: expected cache %s, got %s for: %s\n",
                     expect_hit ? "hit" : "miss",
                     facts.hit ? "hit" : "miss", p.line.c_str());
        return 5;
      }
      if (rep == 0) p.rounds = facts.rounds;
      sim_rounds.push_back(static_cast<std::uint64_t>(facts.rounds));
      if (oracle && !oracle_check(p.line, facts)) {
        std::fprintf(stderr, "error: oracle mismatch for: %s\n",
                     p.line.c_str());
        return 7;
      }
    }
  }
  const double host_seconds =
      std::chrono::duration<double>(clock::now() - t0).count();

  std::string stats_line;
  serve::ServeStats st;
  {
    if (!client.send_line("{\"op\":\"stats\"}") ||
        !client.recv_line(&stats_line)) {
      return connection_lost("{\"op\":\"stats\"}");
    }
    json::Value v;
    const json::Value* stats = nullptr;
    if (!json::parse(stats_line, &v) ||
        (stats = v.find("stats")) == nullptr || !stats->is_object()) {
      std::fprintf(stderr, "error: malformed stats response: %s\n",
                   stats_line.c_str());
      return 5;
    }
    auto counter = [&](const char* key) -> std::uint64_t {
      const json::Value* c = stats->find(key);
      return c != nullptr ? static_cast<std::uint64_t>(c->number) : 0;
    };
    st.connections = counter("connections");
    st.requests = counter("requests");
    st.errors = counter("errors");
    st.rejected = counter("rejected");
    st.batches = counter("batches");
    st.hits = counter("hits");
    st.misses = counter("misses");
    st.evictions = counter("evictions");
    st.entries = counter("entries");
  }

  // Full metrics registry (re-serialized canonically via json::dump so the
  // embedded object is byte-stable for the bench gate's exact compare).
  std::string metrics_dump;
  {
    std::string metrics_line;
    if (!client.send_line("{\"op\":\"metrics\"}") ||
        !client.recv_line(&metrics_line)) {
      return connection_lost("{\"op\":\"metrics\"}");
    }
    json::Value v;
    const json::Value* m = nullptr;
    if (!json::parse(metrics_line, &v) || (m = v.find("metrics")) == nullptr ||
        !m->is_object()) {
      std::fprintf(stderr, "error: malformed metrics response: %s\n",
                   metrics_line.c_str());
      return 5;
    }
    metrics_dump = json::dump(*m);
  }

  std::sort(latency_ms.begin(), latency_ms.end());
  std::sort(sim_rounds.begin(), sim_rounds.end());
  const std::uint64_t sim_p50 = percentile_u64(sim_rounds, 0.50);
  const std::uint64_t sim_p99 = percentile_u64(sim_rounds, 0.99);
  const double rps =
      host_seconds > 0 ? static_cast<double>(sent) / host_seconds : 0;
  std::fprintf(stderr,
               "dyncg_load: %llu requests in %.3fs (%.0f req/s, p50 %.2fms, "
               "p99 %.2fms, sim rounds p50 %llu / p99 %llu), "
               "server: %llu hits / %llu misses\n",
               static_cast<unsigned long long>(sent), host_seconds, rps,
               percentile(latency_ms, 0.50), percentile(latency_ms, 0.99),
               static_cast<unsigned long long>(sim_p50),
               static_cast<unsigned long long>(sim_p99),
               static_cast<unsigned long long>(st.hits),
               static_cast<unsigned long long>(st.misses));

  if (json_out.empty()) return 0;

  // BENCH_serve.json: schema v2 (docs/OBSERVABILITY.md) + `serve` section
  // (docs/SERVING.md#bench).  `tables` holds only deterministic figures —
  // simulated rounds and exact cache counters — so dyncg_bench_diff can
  // gate them; rps/latency live in `serve`, which the gate ignores.
  json::Writer w;
  w.begin_object();
  w.key("schema_version");
  w.value(std::int64_t{2});
  w.key("kind");
  w.value("dyncg-bench");
  w.key("name");
  w.value("serve");
  w.key("git_rev");
  w.value(stamp_git_rev());
  w.key("config");
  w.begin_object();
  w.key("threads");
  w.value(std::uint64_t{host_threads()});
  w.key("dispatch");
  w.value(kernels::active_simd_name());
  w.end_object();
  w.key("faults");
  w.begin_object();
  w.key("spec");
  w.value("");  // bench-mode requests carry no fault plans
  for (const char* key : {"link_down_hits", "pe_down_hits", "words_dropped",
                          "retries", "detour_rounds", "remaps"}) {
    w.key(key);
    w.value(std::uint64_t{0});
  }
  w.end_object();
  w.key("host_seconds");
  w.value(host_seconds);
  w.key("serve");
  w.begin_object();
  w.key("requests");
  w.value(sent);
  w.key("rps");
  w.value(rps);
  w.key("p50_ms");
  w.value(percentile(latency_ms, 0.50));
  w.key("p99_ms");
  w.value(percentile(latency_ms, 0.99));
  w.key("hits");
  w.value(st.hits);
  w.key("misses");
  w.value(st.misses);
  w.key("evictions");
  w.value(st.evictions);
  w.key("batches");
  w.value(st.batches);
  // Exact simulated-cost percentiles over every response's rounds figure;
  // deterministic, so dyncg_bench_diff compares them byte-for-byte.
  w.key("sim_rounds_p50");
  w.value(sim_p50);
  w.key("sim_rounds_p99");
  w.value(sim_p99);
  w.end_object();
  // The server's full metrics registry at end of run; its
  // stability=deterministic entries join the gate's exact compare.
  w.key("metrics");
  w.value_raw(metrics_dump);
  w.key("tables");
  w.begin_array();
  w.begin_object();
  w.key("title");
  w.value("serve: query mix on " + machine);
  w.key("rows");
  w.begin_array();
  for (const std::string& op : ops) {
    w.begin_object();
    w.key("problem");
    w.value(op + " @ " + machine);
    w.key("claim");
    w.value("docs/SERVING.md");
    // Slope of simulated rounds over the n sweep (matches the bench
    // harness's loglog fit; 0 when the sweep has a single point).
    std::vector<double> xs;
    std::vector<double> ys;
    for (const Probe& p : grid) {
      if (p.op == op) {
        xs.push_back(static_cast<double>(base_n << p.scenario));
        ys.push_back(p.rounds > 0 ? p.rounds : 1);
      }
    }
    double slope = 0;
    if (xs.size() >= 2) {
      double sx = 0, sy = 0, sxx = 0, sxy = 0;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        double lx = std::log(xs[i]);
        double ly = std::log(ys[i]);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
      }
      double n = static_cast<double>(xs.size());
      slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    }
    w.key("slope");
    w.value(slope);
    w.key("points");
    w.begin_array();
    for (const Probe& p : grid) {
      if (p.op != op) continue;
      w.begin_object();
      w.key("n");
      w.value(static_cast<double>(base_n << p.scenario));
      w.key("rounds");
      w.value(p.rounds);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  // Exact cache-counter rows: deterministic because the request stream is a
  // single ordered connection and the cache protocol is sequential.
  w.begin_object();
  w.key("title");
  w.value("serve: cache counters");
  w.key("rows");
  w.begin_array();
  struct CounterRow {
    const char* problem;
    std::uint64_t value;
  };
  const CounterRow rows[] = {
      {"cache hits", st.hits},
      {"cache misses", st.misses},
      {"cache evictions", st.evictions},
  };
  for (const CounterRow& row : rows) {
    w.begin_object();
    w.key("problem");
    w.value(row.problem);
    w.key("claim");
    w.value("exact (FIFO cache, ordered stream)");
    w.key("slope");
    w.value(0.0);
    w.key("points");
    w.begin_array();
    w.begin_object();
    w.key("n");
    w.value(static_cast<double>(sent));
    w.key("rounds");
    w.value(static_cast<double>(row.value));
    w.end_object();
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_array();
  w.end_object();

  if (std::FILE* f = std::fopen(json_out.c_str(), "w")) {
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
    return 1;
  }
  return 0;
}
