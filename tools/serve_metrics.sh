#!/bin/sh
# Metrics / observability test of the serving stack (docs/OBSERVABILITY.md,
# docs/SERVING.md):
#
#   1. exposition   — --metrics-out writes a schema-valid registry snapshot
#      at startup, rewrites it while serving, and the Prometheus variant
#      carries the expected families;
#   2. metrics op   — a `metrics` request against the live server returns a
#      schema-valid snapshot inline (validated by --serve-response), and
#      `stats` carries schema_version / git_rev / uptime_seconds;
#   3. flush_trace  — the admin op write-and-clears --trace-out on demand,
#      and SIGUSR1 does the same without stopping the daemon;
#   4. determinism  — the stability=deterministic half of the registry is
#      byte-identical across DYNCG_THREADS 1 and 4 for the same pipelined
#      request script (multi-request batches, parallel compute).
#
#   serve_metrics.sh DYNCG_SERVE DYNCG_LOAD DYNCG_JSON_CHECK
set -e
SERVE=$1
LOAD=$2
CHECK=$3
dir=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null
  rm -rf "$dir"
}
trap cleanup EXIT

wait_for_file() {
  i=0
  while [ ! -s "$1" ]; do
    i=$((i + 1))
    test "$i" -le 100
    sleep 0.1
  done
}

# --- 1+2+3. JSON exposition, metrics/stats/flush_trace ops, SIGUSR1 --------
"$SERVE" --port-file "$dir/port" --metrics-out "$dir/metrics.json" \
  --metrics-interval 1 --trace-out "$dir/trace.json" &
pid=$!
wait_for_file "$dir/port"

# Startup snapshot is written before the first request is accepted.
wait_for_file "$dir/metrics.json"
"$CHECK" --metrics "$dir/metrics.json" > /dev/null

{
  echo '{"op":"neighbor","scenario":{"seed":1,"n":8,"k":1},"query":0}'
  echo '{"op":"neighbor","scenario":{"seed":1,"n":8,"k":1},"query":0}'
  echo '{"op":"stats","id":"s"}'
  echo '{"op":"metrics","id":"m"}'
  echo '{"op":"flush_trace","id":"f"}'
} > "$dir/reqs"
"$LOAD" --port-file "$dir/port" --send "$dir/reqs" --results-out "$dir/resp"
"$CHECK" --serve-response "$dir/resp" > /dev/null
grep -q '"schema_version":4' "$dir/resp"
grep -q '"git_rev":"' "$dir/resp"
grep -q '"uptime_seconds":' "$dir/resp"
grep -q '"kind":"dyncg-metrics"' "$dir/resp"
grep -q '"id":"f","status":"OK"' "$dir/resp"
test -s "$dir/trace.json"

# SIGUSR1 write-and-clears the trace file without stopping the daemon.
rm "$dir/trace.json"
kill -USR1 "$pid"
wait_for_file "$dir/trace.json"

# The periodic rewrite reflects requests served after startup.
rm "$dir/metrics.json"
wait_for_file "$dir/metrics.json"
"$CHECK" --metrics "$dir/metrics.json" > /dev/null
grep -q '"name":"serve.cache.hits","help"' "$dir/metrics.json"

kill -TERM "$pid"
wait "$pid"
pid=

# --- 1b. Prometheus exposition ---------------------------------------------
"$SERVE" --port-file "$dir/port2" --metrics-out "$dir/metrics.prom" &
pid=$!
{
  echo '{"op":"ping"}'
  echo '{"op":"neighbor","scenario":{"seed":1,"n":8,"k":1},"query":0}'
} > "$dir/ping"
"$LOAD" --port-file "$dir/port2" --send "$dir/ping" > /dev/null
kill -TERM "$pid"
wait "$pid"
pid=
# The shutdown write is unconditional, so the final file has the families.
grep -q '^# TYPE dyncg_serve_requests_ping counter$' "$dir/metrics.prom"
grep -q '^# TYPE dyncg_serve_query_rounds histogram$' "$dir/metrics.prom"
grep -q '_bucket{le="+Inf"}' "$dir/metrics.prom"

# --- 4. deterministic half byte-identical across thread counts -------------
: > "$dir/script"
for pass in 1 2; do
  for seed in 1 2 3; do
    {
      echo '{"op":"neighbor","scenario":{"seed":'$seed',"n":8,"k":1},"query":0}'
      echo '{"op":"collisions","scenario":{"seed":'$seed',"n":8,"k":1},"query":1}'
      echo '{"op":"contain","scenario":{"seed":'$seed',"n":8,"k":1},"box":[8,6]}'
    } >> "$dir/script"
  done
done
for t in 1 4; do
  "$SERVE" --port-file "$dir/port$t" --threads "$t" \
    --metrics-out "$dir/m$t.json" &
  pid=$!
  # --pipeline sends the whole script before reading: the server forms
  # multi-request batches and computes them on $t threads.
  "$LOAD" --port-file "$dir/port$t" --send "$dir/script" --pipeline \
    --oracle > /dev/null
  kill -TERM "$pid"
  wait "$pid"
  pid=
  "$CHECK" --metrics-deterministic "$dir/m$t.json" > "$dir/det$t"
  test -s "$dir/det$t"
done
diff "$dir/det1" "$dir/det4"
