// dyncg_json_check — schema validator for the observability outputs.
//
//   dyncg_json_check --trace FILE          Chrome trace_event JSON
//                                          (dyncg_cli --trace-out /
//                                          DYNCG_TRACE)
//   dyncg_json_check --jsonl FILE          flat JSONL span metrics stream
//   dyncg_json_check --bench FILE          BENCH_<name>.json bench report
//   dyncg_json_check --serve-request FILE  dyncg_serve request lines
//                                          (JSONL; validated by the same
//                                          parser the server runs)
//   dyncg_json_check --serve-response FILE dyncg_serve response lines
//                                          (JSONL)
//   dyncg_json_check --metrics FILE        metrics registry snapshot
//                                          (dyncg_serve --metrics-out *.json
//                                          or the `metrics` op's payload)
//   dyncg_json_check --metrics-deterministic FILE
//                                          validate like --metrics, then
//                                          print one canonical line per
//                                          stability=deterministic entry —
//                                          diff two runs' outputs to assert
//                                          the deterministic half of the
//                                          registry is byte-identical
//
// Exit 0 when the file parses and carries every required field with the
// right type; exit 1 with a diagnostic otherwise.  Used by the ctest
// fixtures (tools/CMakeLists.txt, bench/CMakeLists.txt) so a schema
// regression fails the default test target; the schemas themselves are
// documented in docs/OBSERVABILITY.md and docs/SERVING.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/protocol.hpp"
#include "support/json.hpp"

namespace {

using dyncg::json::Value;

bool g_ok = true;
const char* g_file = "";

void fail(const std::string& msg) {
  std::fprintf(stderr, "%s: %s\n", g_file, msg.c_str());
  g_ok = false;
}

// Require obj[key] with the given type; returns nullptr on failure.
const Value* require(const Value& obj, const std::string& key,
                     Value::Type type, const std::string& where) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    fail(where + ": missing key \"" + key + "\"");
    return nullptr;
  }
  if (v->type != type) {
    fail(where + ": key \"" + key + "\" has the wrong type");
    return nullptr;
  }
  return v;
}

void check_metrics(const Value& doc);  // shared by --bench and --metrics

void check_cost_args(const Value& args, const std::string& where) {
  require(args, "rounds", Value::Type::kNumber, where);
  require(args, "messages", Value::Type::kNumber, where);
  require(args, "local_ops", Value::Type::kNumber, where);
}

void check_trace(const Value& doc) {
  if (!doc.is_object()) {
    fail("top level is not an object");
    return;
  }
  const Value* events =
      require(doc, "traceEvents", Value::Type::kArray, "trace");
  if (events == nullptr) return;
  std::size_t i = 0;
  for (const Value& e : events->array) {
    std::string where = "traceEvents[" + std::to_string(i++) + "]";
    if (!e.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    require(e, "name", Value::Type::kString, where);
    const Value* ph = require(e, "ph", Value::Type::kString, where);
    if (ph != nullptr && ph->string != "X") {
      fail(where + ": expected complete events (ph == \"X\")");
    }
    require(e, "ts", Value::Type::kNumber, where);
    require(e, "dur", Value::Type::kNumber, where);
    require(e, "pid", Value::Type::kNumber, where);
    require(e, "tid", Value::Type::kNumber, where);
    const Value* args = require(e, "args", Value::Type::kObject, where);
    if (args != nullptr) check_cost_args(*args, where + ".args");
  }
}

void check_jsonl_line(const Value& doc, std::size_t lineno) {
  std::string where = "line " + std::to_string(lineno);
  if (!doc.is_object()) {
    fail(where + " is not an object");
    return;
  }
  require(doc, "name", Value::Type::kString, where);
  require(doc, "tid", Value::Type::kNumber, where);
  require(doc, "depth", Value::Type::kNumber, where);
  require(doc, "start_us", Value::Type::kNumber, where);
  require(doc, "dur_us", Value::Type::kNumber, where);
  check_cost_args(doc, where);
}

void check_bench(const Value& doc) {
  if (!doc.is_object()) {
    fail("top level is not an object");
    return;
  }
  require(doc, "schema_version", Value::Type::kNumber, "bench");
  const Value* kind = require(doc, "kind", Value::Type::kString, "bench");
  if (kind != nullptr && kind->string != "dyncg-bench") {
    fail("bench: kind is not \"dyncg-bench\"");
  }
  require(doc, "name", Value::Type::kString, "bench");
  require(doc, "git_rev", Value::Type::kString, "bench");
  require(doc, "host_seconds", Value::Type::kNumber, "bench");
  const Value* config = require(doc, "config", Value::Type::kObject, "bench");
  if (config != nullptr) {
    require(*config, "threads", Value::Type::kNumber, "bench.config");
    // The numeric-kernel dispatch target the run used; ledger figures are
    // dispatch-independent by contract (docs/PERFORMANCE.md#simd-kernels).
    const Value* dispatch =
        require(*config, "dispatch", Value::Type::kString, "bench.config");
    if (dispatch != nullptr && dispatch->string != "scalar" &&
        dispatch->string != "avx2") {
      fail("bench.config: dispatch is not \"scalar\" or \"avx2\"");
    }
  }
  // v2: the fault-injection section — active spec + process-wide counters.
  const Value* faults = require(doc, "faults", Value::Type::kObject, "bench");
  if (faults != nullptr) {
    require(*faults, "spec", Value::Type::kString, "bench.faults");
    for (const char* key : {"link_down_hits", "pe_down_hits", "words_dropped",
                            "retries", "detour_rounds", "remaps"}) {
      require(*faults, key, Value::Type::kNumber, "bench.faults");
    }
  }
  // A report named "serve" comes from dyncg_load and must carry the
  // host-side serving metrics section (docs/SERVING.md#bench).
  const Value* name = doc.find("name");
  if (name != nullptr && name->is_string() && name->string == "serve") {
    const Value* serve = require(doc, "serve", Value::Type::kObject, "bench");
    if (serve != nullptr) {
      for (const char* key : {"requests", "rps", "p50_ms", "p99_ms", "hits",
                              "misses", "evictions", "batches",
                              "sim_rounds_p50", "sim_rounds_p99"}) {
        require(*serve, key, Value::Type::kNumber, "bench.serve");
      }
    }
    // dyncg_load embeds the server's end-of-run metrics registry; it must
    // itself be a valid snapshot (its deterministic entries are gated).
    const Value* m = require(doc, "metrics", Value::Type::kObject, "bench");
    if (m != nullptr) check_metrics(*m);
  }
  const Value* tables = require(doc, "tables", Value::Type::kArray, "bench");
  if (tables == nullptr) return;
  if (tables->array.empty()) fail("bench: tables is empty");
  std::size_t ti = 0;
  for (const Value& t : tables->array) {
    std::string where = "tables[" + std::to_string(ti++) + "]";
    if (!t.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    require(t, "title", Value::Type::kString, where);
    const Value* rows = require(t, "rows", Value::Type::kArray, where);
    if (rows == nullptr) continue;
    std::size_t ri = 0;
    for (const Value& r : rows->array) {
      std::string rwhere = where + ".rows[" + std::to_string(ri++) + "]";
      if (!r.is_object()) {
        fail(rwhere + " is not an object");
        continue;
      }
      require(r, "problem", Value::Type::kString, rwhere);
      require(r, "claim", Value::Type::kString, rwhere);
      require(r, "slope", Value::Type::kNumber, rwhere);
      const Value* pts = require(r, "points", Value::Type::kArray, rwhere);
      if (pts == nullptr) continue;
      std::size_t pi = 0;
      for (const Value& p : pts->array) {
        std::string pwhere = rwhere + ".points[" + std::to_string(pi++) + "]";
        if (!p.is_object()) {
          fail(pwhere + " is not an object");
          continue;
        }
        require(p, "n", Value::Type::kNumber, pwhere);
        require(p, "rounds", Value::Type::kNumber, pwhere);
      }
    }
  }
}

// Metrics registry snapshot (docs/OBSERVABILITY.md#metrics): shared entry
// prefix, then per-kind payload.  Returns true when the entry's stability
// field says "deterministic" (the caller may not care).
bool check_metric_entry(const Value& e, const std::string& where) {
  require(e, "name", Value::Type::kString, where);
  require(e, "help", Value::Type::kString, where);
  bool deterministic = false;
  const Value* stability =
      require(e, "stability", Value::Type::kString, where);
  if (stability != nullptr) {
    if (stability->string != "deterministic" &&
        stability->string != "host-noisy") {
      fail(where + ": stability is neither \"deterministic\" nor "
                   "\"host-noisy\"");
    }
    deterministic = stability->string == "deterministic";
  }
  return deterministic;
}

void check_metrics(const Value& doc) {
  if (!doc.is_object()) {
    fail("top level is not an object");
    return;
  }
  const Value* version =
      require(doc, "schema_version", Value::Type::kNumber, "metrics");
  if (version != nullptr && version->number != 1) {
    fail("metrics: schema_version is not 1");
  }
  const Value* kind = require(doc, "kind", Value::Type::kString, "metrics");
  if (kind != nullptr && kind->string != "dyncg-metrics") {
    fail("metrics: kind is not \"dyncg-metrics\"");
  }
  for (const char* section : {"counters", "gauges"}) {
    const Value* arr = require(doc, section, Value::Type::kArray, "metrics");
    if (arr == nullptr) continue;
    std::string prev;
    std::size_t i = 0;
    for (const Value& e : arr->array) {
      std::string where =
          std::string(section) + "[" + std::to_string(i++) + "]";
      if (!e.is_object()) {
        fail(where + " is not an object");
        continue;
      }
      check_metric_entry(e, where);
      require(e, "value", Value::Type::kNumber, where);
      if (const Value* name = e.find("name")) {
        if (name->is_string()) {
          if (!prev.empty() && !(prev < name->string)) {
            fail(where + ": names are not strictly ascending");
          }
          prev = name->string;
        }
      }
    }
  }
  const Value* hists =
      require(doc, "histograms", Value::Type::kArray, "metrics");
  if (hists == nullptr) return;
  std::string prev;
  std::size_t i = 0;
  for (const Value& e : hists->array) {
    std::string where = "histograms[" + std::to_string(i++) + "]";
    if (!e.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    check_metric_entry(e, where);
    const Value* bounds = require(e, "bounds", Value::Type::kArray, where);
    const Value* buckets = require(e, "buckets", Value::Type::kArray, where);
    require(e, "sum", Value::Type::kNumber, where);
    const Value* count = require(e, "count", Value::Type::kNumber, where);
    if (bounds != nullptr) {
      double last = -1;
      for (const Value& b : bounds->array) {
        if (!b.is_number() || b.number <= last) {
          fail(where + ": bounds are not strictly ascending numbers");
          break;
        }
        last = b.number;
      }
      if (bounds->array.empty()) fail(where + ": bounds is empty");
    }
    if (bounds != nullptr && buckets != nullptr) {
      if (buckets->array.size() != bounds->array.size() + 1) {
        fail(where + ": buckets.size() != bounds.size() + 1 (overflow)");
      }
      double total = 0;
      bool numeric = true;
      for (const Value& b : buckets->array) {
        if (!b.is_number()) {
          numeric = false;
          break;
        }
        total += b.number;
      }
      if (!numeric) {
        fail(where + ": buckets holds a non-number");
      } else if (count != nullptr && count->number != total) {
        fail(where + ": count != sum of buckets");
      }
    }
    if (const Value* name = e.find("name")) {
      if (name->is_string()) {
        if (!prev.empty() && !(prev < name->string)) {
          fail(where + ": names are not strictly ascending");
        }
        prev = name->string;
      }
    }
  }
}

// --metrics-deterministic: one canonical (json::dump) line per entry whose
// stability is "deterministic", prefixed with its kind.  Two runs of the
// same request script must produce byte-identical output here no matter
// the thread count — the serve_metrics.sh fixture diffs exactly that.
void print_deterministic(const Value& doc) {
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Value* arr = doc.find(section);
    if (arr == nullptr || !arr->is_array()) continue;
    for (const Value& e : arr->array) {
      if (!e.is_object()) continue;
      const Value* stability = e.find("stability");
      if (stability == nullptr || !stability->is_string() ||
          stability->string != "deterministic") {
        continue;
      }
      std::printf("%s %s\n", section, dyncg::json::dump(e).c_str());
    }
  }
}

// One dyncg_serve request line: run it through the server's own parser, so
// this check accepts exactly what the daemon accepts — never a lookalike
// schema that can drift.
void check_serve_request(const std::string& line, std::size_t lineno) {
  dyncg::StatusOr<dyncg::serve::Request> req =
      dyncg::serve::parse_request(line);
  if (!req.is_ok()) {
    fail("line " + std::to_string(lineno) + ": " +
         req.status().to_string());
  }
}

// One dyncg_serve response line (docs/SERVING.md#responses).
void check_serve_response(const Value& doc, std::size_t lineno) {
  std::string where = "line " + std::to_string(lineno);
  if (!doc.is_object()) {
    fail(where + " is not an object");
    return;
  }
  const Value* status = require(doc, "status", Value::Type::kString, where);
  if (status == nullptr) return;
  if (status->string != "OK") {
    require(doc, "error", Value::Type::kString, where);
    return;
  }
  const Value* op = require(doc, "op", Value::Type::kString, where);
  if (op == nullptr) return;
  if (op->string == "ping") {
    require(doc, "result", Value::Type::kString, where);
    return;
  }
  if (op->string == "stats") {
    const Value* stats = require(doc, "stats", Value::Type::kObject, where);
    if (stats != nullptr) {
      const Value* version = require(*stats, "schema_version",
                                     Value::Type::kNumber, where + ".stats");
      if (version != nullptr &&
          version->number !=
              static_cast<double>(dyncg::serve::kServeSchemaVersion)) {
        fail(where + ".stats: schema_version mismatch");
      }
      require(*stats, "git_rev", Value::Type::kString, where + ".stats");
      require(*stats, "uptime_seconds", Value::Type::kNumber,
              where + ".stats");
      for (const char* key :
           {"connections", "requests", "errors", "rejected", "shed",
            "deadline_exceeded", "batches", "hits", "misses", "evictions",
            "entries", "fleets"}) {
        require(*stats, key, Value::Type::kNumber, where + ".stats");
      }
    }
    return;
  }
  if (op->string == "metrics") {
    const Value* m = require(doc, "metrics", Value::Type::kObject, where);
    if (m != nullptr) check_metrics(*m);
    return;
  }
  if (op->string == "flush_trace") {
    require(doc, "spans", Value::Type::kNumber, where);
    require(doc, "path", Value::Type::kString, where);
    return;
  }
  if (op->string == "fleet_open" || op->string == "fleet_update" ||
      op->string == "fleet_query" || op->string == "fleet_close") {
    // Stateful fleet-session responses (docs/SERVING.md#fleet-sessions):
    // no cache/machine members; t and next_event are %.17g strings so the
    // session time round-trips exactly (and "inf" stays representable).
    require(doc, "fleet", Value::Type::kString, where);
    if (op->string == "fleet_open") {
      for (const char* k : {"d", "k", "max_members"}) {
        require(doc, k, Value::Type::kNumber, where);
      }
      require(doc, "result", Value::Type::kString, where);
      return;
    }
    require(doc, "members", Value::Type::kNumber, where);
    if (op->string == "fleet_close") {
      require(doc, "result", Value::Type::kString, where);
      return;
    }
    require(doc, "t", Value::Type::kString, where);
    require(doc, "next_event", Value::Type::kString, where);
    const Value* fcost = require(doc, "cost", Value::Type::kObject, where);
    if (fcost != nullptr) {
      check_cost_args(*fcost, where + ".cost");
      require(*fcost, "time", Value::Type::kNumber, where + ".cost");
    }
    if (op->string == "fleet_update") {
      for (const char* k : {"inserted", "deduped", "erased"}) {
        require(doc, k, Value::Type::kNumber, where);
      }
      return;
    }
    const Value* fkey = require(doc, "key", Value::Type::kString, where);
    if (fkey != nullptr && fkey->string.size() != 16) {
      fail(where + ": key is not a 16-hex-digit fingerprint");
    }
    require(doc, "result", Value::Type::kString, where);
    return;
  }
  const Value* cache = require(doc, "cache", Value::Type::kString, where);
  if (cache != nullptr && cache->string != "hit" &&
      cache->string != "miss") {
    fail(where + ": cache is neither \"hit\" nor \"miss\"");
  }
  const Value* key = require(doc, "key", Value::Type::kString, where);
  if (key != nullptr && key->string.size() != 16) {
    fail(where + ": key is not a 16-hex-digit fingerprint");
  }
  const Value* machine = require(doc, "machine", Value::Type::kObject, where);
  if (machine != nullptr) {
    require(*machine, "topology", Value::Type::kString, where + ".machine");
    require(*machine, "pes", Value::Type::kNumber, where + ".machine");
  }
  const Value* cost = require(doc, "cost", Value::Type::kObject, where);
  if (cost != nullptr) {
    check_cost_args(*cost, where + ".cost");
    require(*cost, "time", Value::Type::kNumber, where + ".cost");
  }
  require(doc, "result", Value::Type::kString, where);
}

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: dyncg_json_check --trace|--jsonl|--bench|"
               "--serve-request|--serve-response|--metrics|"
               "--metrics-deterministic FILE\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string mode = argv[1];
  g_file = argv[2];
  std::string text;
  if (!read_file(argv[2], &text)) {
    std::fprintf(stderr, "%s: cannot read\n", argv[2]);
    return 1;
  }

  if (mode == "--jsonl" || mode == "--serve-request" ||
      mode == "--serve-response") {
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    std::size_t parsed = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.empty()) continue;
      if (mode == "--serve-request") {
        check_serve_request(line, lineno);
        ++parsed;
        continue;
      }
      Value v;
      std::string err;
      if (!dyncg::json::parse(line, &v, &err)) {
        fail("line " + std::to_string(lineno) + ": " + err);
        continue;
      }
      if (mode == "--serve-response") {
        check_serve_response(v, lineno);
      } else {
        check_jsonl_line(v, lineno);
      }
      ++parsed;
    }
    if (parsed == 0) fail("no records");
  } else if (mode == "--trace" || mode == "--bench" || mode == "--metrics" ||
             mode == "--metrics-deterministic") {
    Value v;
    std::string err;
    if (!dyncg::json::parse(text, &v, &err)) {
      fail("parse error: " + err);
    } else if (mode == "--trace") {
      check_trace(v);
    } else if (mode == "--bench") {
      check_bench(v);
    } else {
      check_metrics(v);
      // The deterministic dump IS the output — no trailing "ok" line, so
      // two runs' outputs can be diffed byte-for-byte.
      if (mode == "--metrics-deterministic" && g_ok) {
        print_deterministic(v);
        return 0;
      }
    }
  } else {
    return usage();
  }

  if (g_ok) std::printf("%s: ok\n", g_file);
  return g_ok ? 0 : 1;
}
