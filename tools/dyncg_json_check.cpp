// dyncg_json_check — schema validator for the observability outputs.
//
//   dyncg_json_check --trace FILE   Chrome trace_event JSON (dyncg_cli
//                                   --trace-out / DYNCG_TRACE)
//   dyncg_json_check --jsonl FILE   flat JSONL span metrics stream
//   dyncg_json_check --bench FILE   BENCH_<name>.json bench report
//
// Exit 0 when the file parses and carries every required field with the
// right type; exit 1 with a diagnostic otherwise.  Used by the ctest
// fixtures (tools/CMakeLists.txt, bench/CMakeLists.txt) so a schema
// regression fails the default test target; the schemas themselves are
// documented in docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.hpp"

namespace {

using dyncg::json::Value;

bool g_ok = true;
const char* g_file = "";

void fail(const std::string& msg) {
  std::fprintf(stderr, "%s: %s\n", g_file, msg.c_str());
  g_ok = false;
}

// Require obj[key] with the given type; returns nullptr on failure.
const Value* require(const Value& obj, const std::string& key,
                     Value::Type type, const std::string& where) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    fail(where + ": missing key \"" + key + "\"");
    return nullptr;
  }
  if (v->type != type) {
    fail(where + ": key \"" + key + "\" has the wrong type");
    return nullptr;
  }
  return v;
}

void check_cost_args(const Value& args, const std::string& where) {
  require(args, "rounds", Value::Type::kNumber, where);
  require(args, "messages", Value::Type::kNumber, where);
  require(args, "local_ops", Value::Type::kNumber, where);
}

void check_trace(const Value& doc) {
  if (!doc.is_object()) {
    fail("top level is not an object");
    return;
  }
  const Value* events =
      require(doc, "traceEvents", Value::Type::kArray, "trace");
  if (events == nullptr) return;
  std::size_t i = 0;
  for (const Value& e : events->array) {
    std::string where = "traceEvents[" + std::to_string(i++) + "]";
    if (!e.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    require(e, "name", Value::Type::kString, where);
    const Value* ph = require(e, "ph", Value::Type::kString, where);
    if (ph != nullptr && ph->string != "X") {
      fail(where + ": expected complete events (ph == \"X\")");
    }
    require(e, "ts", Value::Type::kNumber, where);
    require(e, "dur", Value::Type::kNumber, where);
    require(e, "pid", Value::Type::kNumber, where);
    require(e, "tid", Value::Type::kNumber, where);
    const Value* args = require(e, "args", Value::Type::kObject, where);
    if (args != nullptr) check_cost_args(*args, where + ".args");
  }
}

void check_jsonl_line(const Value& doc, std::size_t lineno) {
  std::string where = "line " + std::to_string(lineno);
  if (!doc.is_object()) {
    fail(where + " is not an object");
    return;
  }
  require(doc, "name", Value::Type::kString, where);
  require(doc, "tid", Value::Type::kNumber, where);
  require(doc, "depth", Value::Type::kNumber, where);
  require(doc, "start_us", Value::Type::kNumber, where);
  require(doc, "dur_us", Value::Type::kNumber, where);
  check_cost_args(doc, where);
}

void check_bench(const Value& doc) {
  if (!doc.is_object()) {
    fail("top level is not an object");
    return;
  }
  require(doc, "schema_version", Value::Type::kNumber, "bench");
  const Value* kind = require(doc, "kind", Value::Type::kString, "bench");
  if (kind != nullptr && kind->string != "dyncg-bench") {
    fail("bench: kind is not \"dyncg-bench\"");
  }
  require(doc, "name", Value::Type::kString, "bench");
  require(doc, "git_rev", Value::Type::kString, "bench");
  require(doc, "host_seconds", Value::Type::kNumber, "bench");
  const Value* config = require(doc, "config", Value::Type::kObject, "bench");
  if (config != nullptr) {
    require(*config, "threads", Value::Type::kNumber, "bench.config");
  }
  // v2: the fault-injection section — active spec + process-wide counters.
  const Value* faults = require(doc, "faults", Value::Type::kObject, "bench");
  if (faults != nullptr) {
    require(*faults, "spec", Value::Type::kString, "bench.faults");
    for (const char* key : {"link_down_hits", "pe_down_hits", "words_dropped",
                            "retries", "detour_rounds", "remaps"}) {
      require(*faults, key, Value::Type::kNumber, "bench.faults");
    }
  }
  const Value* tables = require(doc, "tables", Value::Type::kArray, "bench");
  if (tables == nullptr) return;
  if (tables->array.empty()) fail("bench: tables is empty");
  std::size_t ti = 0;
  for (const Value& t : tables->array) {
    std::string where = "tables[" + std::to_string(ti++) + "]";
    if (!t.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    require(t, "title", Value::Type::kString, where);
    const Value* rows = require(t, "rows", Value::Type::kArray, where);
    if (rows == nullptr) continue;
    std::size_t ri = 0;
    for (const Value& r : rows->array) {
      std::string rwhere = where + ".rows[" + std::to_string(ri++) + "]";
      if (!r.is_object()) {
        fail(rwhere + " is not an object");
        continue;
      }
      require(r, "problem", Value::Type::kString, rwhere);
      require(r, "claim", Value::Type::kString, rwhere);
      require(r, "slope", Value::Type::kNumber, rwhere);
      const Value* pts = require(r, "points", Value::Type::kArray, rwhere);
      if (pts == nullptr) continue;
      std::size_t pi = 0;
      for (const Value& p : pts->array) {
        std::string pwhere = rwhere + ".points[" + std::to_string(pi++) + "]";
        if (!p.is_object()) {
          fail(pwhere + " is not an object");
          continue;
        }
        require(p, "n", Value::Type::kNumber, pwhere);
        require(p, "rounds", Value::Type::kNumber, pwhere);
      }
    }
  }
}

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: dyncg_json_check --trace|--jsonl|--bench FILE\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string mode = argv[1];
  g_file = argv[2];
  std::string text;
  if (!read_file(argv[2], &text)) {
    std::fprintf(stderr, "%s: cannot read\n", argv[2]);
    return 1;
  }

  if (mode == "--jsonl") {
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    std::size_t parsed = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.empty()) continue;
      Value v;
      std::string err;
      if (!dyncg::json::parse(line, &v, &err)) {
        fail("line " + std::to_string(lineno) + ": " + err);
        continue;
      }
      check_jsonl_line(v, lineno);
      ++parsed;
    }
    if (parsed == 0) fail("no records");
  } else if (mode == "--trace" || mode == "--bench") {
    Value v;
    std::string err;
    if (!dyncg::json::parse(text, &v, &err)) {
      fail("parse error: " + err);
    } else if (mode == "--trace") {
      check_trace(v);
    } else {
      check_bench(v);
    }
  } else {
    return usage();
  }

  if (g_ok) std::printf("%s: ok\n", g_file);
  return g_ok ? 0 : 1;
}
