// dyncg_json_check — schema validator for the observability outputs.
//
//   dyncg_json_check --trace FILE          Chrome trace_event JSON
//                                          (dyncg_cli --trace-out /
//                                          DYNCG_TRACE)
//   dyncg_json_check --jsonl FILE          flat JSONL span metrics stream
//   dyncg_json_check --bench FILE          BENCH_<name>.json bench report
//   dyncg_json_check --serve-request FILE  dyncg_serve request lines
//                                          (JSONL; validated by the same
//                                          parser the server runs)
//   dyncg_json_check --serve-response FILE dyncg_serve response lines
//                                          (JSONL)
//
// Exit 0 when the file parses and carries every required field with the
// right type; exit 1 with a diagnostic otherwise.  Used by the ctest
// fixtures (tools/CMakeLists.txt, bench/CMakeLists.txt) so a schema
// regression fails the default test target; the schemas themselves are
// documented in docs/OBSERVABILITY.md and docs/SERVING.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/protocol.hpp"
#include "support/json.hpp"

namespace {

using dyncg::json::Value;

bool g_ok = true;
const char* g_file = "";

void fail(const std::string& msg) {
  std::fprintf(stderr, "%s: %s\n", g_file, msg.c_str());
  g_ok = false;
}

// Require obj[key] with the given type; returns nullptr on failure.
const Value* require(const Value& obj, const std::string& key,
                     Value::Type type, const std::string& where) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    fail(where + ": missing key \"" + key + "\"");
    return nullptr;
  }
  if (v->type != type) {
    fail(where + ": key \"" + key + "\" has the wrong type");
    return nullptr;
  }
  return v;
}

void check_cost_args(const Value& args, const std::string& where) {
  require(args, "rounds", Value::Type::kNumber, where);
  require(args, "messages", Value::Type::kNumber, where);
  require(args, "local_ops", Value::Type::kNumber, where);
}

void check_trace(const Value& doc) {
  if (!doc.is_object()) {
    fail("top level is not an object");
    return;
  }
  const Value* events =
      require(doc, "traceEvents", Value::Type::kArray, "trace");
  if (events == nullptr) return;
  std::size_t i = 0;
  for (const Value& e : events->array) {
    std::string where = "traceEvents[" + std::to_string(i++) + "]";
    if (!e.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    require(e, "name", Value::Type::kString, where);
    const Value* ph = require(e, "ph", Value::Type::kString, where);
    if (ph != nullptr && ph->string != "X") {
      fail(where + ": expected complete events (ph == \"X\")");
    }
    require(e, "ts", Value::Type::kNumber, where);
    require(e, "dur", Value::Type::kNumber, where);
    require(e, "pid", Value::Type::kNumber, where);
    require(e, "tid", Value::Type::kNumber, where);
    const Value* args = require(e, "args", Value::Type::kObject, where);
    if (args != nullptr) check_cost_args(*args, where + ".args");
  }
}

void check_jsonl_line(const Value& doc, std::size_t lineno) {
  std::string where = "line " + std::to_string(lineno);
  if (!doc.is_object()) {
    fail(where + " is not an object");
    return;
  }
  require(doc, "name", Value::Type::kString, where);
  require(doc, "tid", Value::Type::kNumber, where);
  require(doc, "depth", Value::Type::kNumber, where);
  require(doc, "start_us", Value::Type::kNumber, where);
  require(doc, "dur_us", Value::Type::kNumber, where);
  check_cost_args(doc, where);
}

void check_bench(const Value& doc) {
  if (!doc.is_object()) {
    fail("top level is not an object");
    return;
  }
  require(doc, "schema_version", Value::Type::kNumber, "bench");
  const Value* kind = require(doc, "kind", Value::Type::kString, "bench");
  if (kind != nullptr && kind->string != "dyncg-bench") {
    fail("bench: kind is not \"dyncg-bench\"");
  }
  require(doc, "name", Value::Type::kString, "bench");
  require(doc, "git_rev", Value::Type::kString, "bench");
  require(doc, "host_seconds", Value::Type::kNumber, "bench");
  const Value* config = require(doc, "config", Value::Type::kObject, "bench");
  if (config != nullptr) {
    require(*config, "threads", Value::Type::kNumber, "bench.config");
  }
  // v2: the fault-injection section — active spec + process-wide counters.
  const Value* faults = require(doc, "faults", Value::Type::kObject, "bench");
  if (faults != nullptr) {
    require(*faults, "spec", Value::Type::kString, "bench.faults");
    for (const char* key : {"link_down_hits", "pe_down_hits", "words_dropped",
                            "retries", "detour_rounds", "remaps"}) {
      require(*faults, key, Value::Type::kNumber, "bench.faults");
    }
  }
  // A report named "serve" comes from dyncg_load and must carry the
  // host-side serving metrics section (docs/SERVING.md#bench).
  const Value* name = doc.find("name");
  if (name != nullptr && name->is_string() && name->string == "serve") {
    const Value* serve = require(doc, "serve", Value::Type::kObject, "bench");
    if (serve != nullptr) {
      for (const char* key : {"requests", "rps", "p50_ms", "p99_ms", "hits",
                              "misses", "evictions", "batches"}) {
        require(*serve, key, Value::Type::kNumber, "bench.serve");
      }
    }
  }
  const Value* tables = require(doc, "tables", Value::Type::kArray, "bench");
  if (tables == nullptr) return;
  if (tables->array.empty()) fail("bench: tables is empty");
  std::size_t ti = 0;
  for (const Value& t : tables->array) {
    std::string where = "tables[" + std::to_string(ti++) + "]";
    if (!t.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    require(t, "title", Value::Type::kString, where);
    const Value* rows = require(t, "rows", Value::Type::kArray, where);
    if (rows == nullptr) continue;
    std::size_t ri = 0;
    for (const Value& r : rows->array) {
      std::string rwhere = where + ".rows[" + std::to_string(ri++) + "]";
      if (!r.is_object()) {
        fail(rwhere + " is not an object");
        continue;
      }
      require(r, "problem", Value::Type::kString, rwhere);
      require(r, "claim", Value::Type::kString, rwhere);
      require(r, "slope", Value::Type::kNumber, rwhere);
      const Value* pts = require(r, "points", Value::Type::kArray, rwhere);
      if (pts == nullptr) continue;
      std::size_t pi = 0;
      for (const Value& p : pts->array) {
        std::string pwhere = rwhere + ".points[" + std::to_string(pi++) + "]";
        if (!p.is_object()) {
          fail(pwhere + " is not an object");
          continue;
        }
        require(p, "n", Value::Type::kNumber, pwhere);
        require(p, "rounds", Value::Type::kNumber, pwhere);
      }
    }
  }
}

// One dyncg_serve request line: run it through the server's own parser, so
// this check accepts exactly what the daemon accepts — never a lookalike
// schema that can drift.
void check_serve_request(const std::string& line, std::size_t lineno) {
  dyncg::StatusOr<dyncg::serve::Request> req =
      dyncg::serve::parse_request(line);
  if (!req.is_ok()) {
    fail("line " + std::to_string(lineno) + ": " +
         req.status().to_string());
  }
}

// One dyncg_serve response line (docs/SERVING.md#responses).
void check_serve_response(const Value& doc, std::size_t lineno) {
  std::string where = "line " + std::to_string(lineno);
  if (!doc.is_object()) {
    fail(where + " is not an object");
    return;
  }
  const Value* status = require(doc, "status", Value::Type::kString, where);
  if (status == nullptr) return;
  if (status->string != "OK") {
    require(doc, "error", Value::Type::kString, where);
    return;
  }
  const Value* op = require(doc, "op", Value::Type::kString, where);
  if (op == nullptr) return;
  if (op->string == "ping") {
    require(doc, "result", Value::Type::kString, where);
    return;
  }
  if (op->string == "stats") {
    const Value* stats = require(doc, "stats", Value::Type::kObject, where);
    if (stats != nullptr) {
      for (const char* key :
           {"connections", "requests", "errors", "rejected", "batches",
            "hits", "misses", "evictions", "entries"}) {
        require(*stats, key, Value::Type::kNumber, where + ".stats");
      }
    }
    return;
  }
  const Value* cache = require(doc, "cache", Value::Type::kString, where);
  if (cache != nullptr && cache->string != "hit" &&
      cache->string != "miss") {
    fail(where + ": cache is neither \"hit\" nor \"miss\"");
  }
  const Value* key = require(doc, "key", Value::Type::kString, where);
  if (key != nullptr && key->string.size() != 16) {
    fail(where + ": key is not a 16-hex-digit fingerprint");
  }
  const Value* machine = require(doc, "machine", Value::Type::kObject, where);
  if (machine != nullptr) {
    require(*machine, "topology", Value::Type::kString, where + ".machine");
    require(*machine, "pes", Value::Type::kNumber, where + ".machine");
  }
  const Value* cost = require(doc, "cost", Value::Type::kObject, where);
  if (cost != nullptr) {
    check_cost_args(*cost, where + ".cost");
    require(*cost, "time", Value::Type::kNumber, where + ".cost");
  }
  require(doc, "result", Value::Type::kString, where);
}

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: dyncg_json_check --trace|--jsonl|--bench|"
               "--serve-request|--serve-response FILE\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string mode = argv[1];
  g_file = argv[2];
  std::string text;
  if (!read_file(argv[2], &text)) {
    std::fprintf(stderr, "%s: cannot read\n", argv[2]);
    return 1;
  }

  if (mode == "--jsonl" || mode == "--serve-request" ||
      mode == "--serve-response") {
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    std::size_t parsed = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.empty()) continue;
      if (mode == "--serve-request") {
        check_serve_request(line, lineno);
        ++parsed;
        continue;
      }
      Value v;
      std::string err;
      if (!dyncg::json::parse(line, &v, &err)) {
        fail("line " + std::to_string(lineno) + ": " + err);
        continue;
      }
      if (mode == "--serve-response") {
        check_serve_response(v, lineno);
      } else {
        check_jsonl_line(v, lineno);
      }
      ++parsed;
    }
    if (parsed == 0) fail("no records");
  } else if (mode == "--trace" || mode == "--bench") {
    Value v;
    std::string err;
    if (!dyncg::json::parse(text, &v, &err)) {
      fail("parse error: " + err);
    } else if (mode == "--trace") {
      check_trace(v);
    } else {
      check_bench(v);
    }
  } else {
    return usage();
  }

  if (g_ok) std::printf("%s: ok\n", g_file);
  return g_ok ? 0 : 1;
}
