#!/bin/sh
# Canonical BENCH_serve.json production: start a fresh dyncg_serve, run one
# deterministic dyncg_load bench grid against it (oracle-verified), write
# the report, stop the daemon.  Shared by the serve_bench ctest fixture,
# the bench_all baseline refresh, and manual runs — one invocation shape,
# so the gated report and the committed baseline can never come from
# different workloads (docs/SERVING.md#bench).
#
#   serve_bench.sh DYNCG_SERVE DYNCG_LOAD OUT.json [extra dyncg_load args]
set -e
SERVE=$1
LOAD=$2
OUT=$3
shift 3
dir=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null
  rm -rf "$dir"
}
trap cleanup EXIT

"$SERVE" --port-file "$dir/port" &
pid=$!

"$LOAD" --port-file "$dir/port" --json "$OUT" --oracle "$@"

kill -TERM "$pid"
wait "$pid"
pid=
