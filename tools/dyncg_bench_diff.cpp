// dyncg_bench_diff — perf-regression gate over BENCH_<name>.json reports.
//
//   dyncg_bench_diff [--host-tolerance R] [--require] BASELINE CURRENT
//
// Compares a freshly produced bench report against a committed baseline
// (baseline/BENCH_<name>.json) and exits non-zero on drift:
//
//   * model-cost figures — every table title, row label, claim, and
//     (n, rounds) point — must match the baseline EXACTLY.  The simulated
//     round counts are deterministic for every DYNCG_THREADS and every
//     recoverable fault plan (docs/PARALLELISM.md, docs/ROBUSTNESS.md), so
//     any difference is a real change to the machine model or the
//     algorithms and must be acknowledged by refreshing the baseline;
//   * fault counters (link_down_hits, retries, ...) are model-cost too and
//     compare exactly;
//   * serve reports: sim_rounds_p50/p99 (exact simulated-cost percentiles)
//     compare exactly, and every stability=deterministic entry of the
//     embedded metrics registry must match canonically — same entry set,
//     same values/buckets (stability=host-noisy entries are ignored);
//   * host_seconds is noise — wall-clock on a shared host — so it only
//     fails when CURRENT exceeds BASELINE by more than the --host-tolerance
//     factor (default 3.0; pass 0 to skip the host check entirely).
//
// schema_version must match (both v2); name must match (comparing fig4
// against table2 is a harness bug, not a perf delta).  git_rev and
// config.threads are informational: printed, never compared.
//
// Exit 0 on match, 1 on drift (with one diagnostic line per difference),
// 2 on usage / unreadable / malformed input.  --require upgrades a missing
// or unreadable BASELINE from exit 2 to exit 1: a bench that is supposed to
// be gated but has no committed baseline is a regression (the gate would
// otherwise silently pass for ever), not a harness typo.  Used by the
// bench_diff ctest fixtures (bench/CMakeLists.txt) and the baseline-refresh
// workflow in docs/PERFORMANCE.md.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace {

using dyncg::json::Value;

int g_drift = 0;

void drift(const std::string& msg) {
  std::fprintf(stderr, "bench-diff: %s\n", msg.c_str());
  ++g_drift;
}

std::string num_str(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Fetch obj[key] with the given type; malformed reports abort the diff
// (exit 2) — dyncg_json_check owns schema validation, this tool assumes it.
const Value& get(const Value& obj, const char* key, Value::Type type,
                 const std::string& where) {
  const Value* v = obj.find(key);
  if (v == nullptr || v->type != type) {
    std::fprintf(stderr, "bench-diff: %s: missing or mistyped \"%s\"\n",
                 where.c_str(), key);
    std::exit(2);
  }
  return *v;
}

double get_num(const Value& obj, const char* key, const std::string& where) {
  return get(obj, key, Value::Type::kNumber, where).number;
}

const std::string& get_str(const Value& obj, const char* key,
                           const std::string& where) {
  return get(obj, key, Value::Type::kString, where).string;
}

void diff_exact_num(double base, double cur, const std::string& what) {
  if (base != cur) {
    drift(what + ": baseline " + num_str(base) + ", current " + num_str(cur));
  }
}

void diff_exact_str(const std::string& base, const std::string& cur,
                    const std::string& what) {
  if (base != cur) {
    drift(what + ": baseline \"" + base + "\", current \"" + cur + "\"");
  }
}

// The ledger figures: tables -> rows -> points, all exact.
void diff_tables(const Value& base, const Value& cur) {
  const Value& bt = get(base, "tables", Value::Type::kArray, "baseline");
  const Value& ct = get(cur, "tables", Value::Type::kArray, "current");
  if (bt.array.size() != ct.array.size()) {
    drift("table count: baseline " + std::to_string(bt.array.size()) +
          ", current " + std::to_string(ct.array.size()));
    return;
  }
  for (std::size_t t = 0; t < bt.array.size(); ++t) {
    std::string where = "tables[" + std::to_string(t) + "]";
    diff_exact_str(get_str(bt.array[t], "title", where),
                   get_str(ct.array[t], "title", where), where + ".title");
    const Value& br = get(bt.array[t], "rows", Value::Type::kArray, where);
    const Value& cr = get(ct.array[t], "rows", Value::Type::kArray, where);
    if (br.array.size() != cr.array.size()) {
      drift(where + ": row count: baseline " +
            std::to_string(br.array.size()) + ", current " +
            std::to_string(cr.array.size()));
      continue;
    }
    for (std::size_t r = 0; r < br.array.size(); ++r) {
      std::string rw = where + ".rows[" + std::to_string(r) + "]";
      diff_exact_str(get_str(br.array[r], "problem", rw),
                     get_str(cr.array[r], "problem", rw), rw + ".problem");
      diff_exact_str(get_str(br.array[r], "claim", rw),
                     get_str(cr.array[r], "claim", rw), rw + ".claim");
      const Value& bp = get(br.array[r], "points", Value::Type::kArray, rw);
      const Value& cp = get(cr.array[r], "points", Value::Type::kArray, rw);
      if (bp.array.size() != cp.array.size()) {
        drift(rw + ": point count: baseline " +
              std::to_string(bp.array.size()) + ", current " +
              std::to_string(cp.array.size()));
        continue;
      }
      for (std::size_t p = 0; p < bp.array.size(); ++p) {
        std::string pw = rw + ".points[" + std::to_string(p) + "]";
        diff_exact_num(get_num(bp.array[p], "n", pw),
                       get_num(cp.array[p], "n", pw), pw + ".n");
        diff_exact_num(get_num(bp.array[p], "rounds", pw),
                       get_num(cp.array[p], "rounds", pw), pw + ".rounds");
      }
    }
  }
}

// Fault counters are deterministic model costs, not host noise.
void diff_faults(const Value& base, const Value& cur) {
  const Value& bf = get(base, "faults", Value::Type::kObject, "baseline");
  const Value& cf = get(cur, "faults", Value::Type::kObject, "current");
  diff_exact_str(get_str(bf, "spec", "baseline.faults"),
                 get_str(cf, "spec", "current.faults"), "faults.spec");
  for (const char* key : {"link_down_hits", "pe_down_hits", "words_dropped",
                          "retries", "detour_rounds", "remaps"}) {
    diff_exact_num(get_num(bf, key, "baseline.faults"),
                   get_num(cf, key, "current.faults"),
                   std::string("faults.") + key);
  }
}

// Serve reports: the exact simulated-cost percentiles gate like ledger
// figures; the rest of the `serve` section (rps, latency) is host noise.
void diff_serve(const Value& base, const Value& cur) {
  const Value* bs = base.find("serve");
  const Value* cs = cur.find("serve");
  if (bs == nullptr && cs == nullptr) return;
  if (bs == nullptr || cs == nullptr || !bs->is_object() ||
      !cs->is_object()) {
    drift("serve section present in only one report");
    return;
  }
  for (const char* key : {"sim_rounds_p50", "sim_rounds_p99"}) {
    diff_exact_num(get_num(*bs, key, "baseline.serve"),
                   get_num(*cs, key, "current.serve"),
                   std::string("serve.") + key);
  }
}

// Deterministic half of an embedded metrics registry
// (docs/OBSERVABILITY.md#metrics): kind-qualified name -> canonical dump of
// the whole entry, so values, bucket vectors, help text, and bounds all
// participate in the exact compare.
void collect_deterministic(const Value& doc,
                           std::vector<std::pair<std::string, std::string>>*
                               out) {
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Value* arr = doc.find(section);
    if (arr == nullptr || !arr->is_array()) continue;
    for (const Value& e : arr->array) {
      if (!e.is_object()) continue;
      const Value* stability = e.find("stability");
      if (stability == nullptr || !stability->is_string() ||
          stability->string != "deterministic") {
        continue;
      }
      const Value* name = e.find("name");
      std::string label = std::string(section) + "/" +
                          (name != nullptr && name->is_string() ? name->string
                                                                : "?");
      out->emplace_back(label, dyncg::json::dump(e));
    }
  }
}

void diff_metrics(const Value& base, const Value& cur) {
  const Value* bm = base.find("metrics");
  const Value* cm = cur.find("metrics");
  if (bm == nullptr && cm == nullptr) return;
  if (bm == nullptr || cm == nullptr || !bm->is_object() ||
      !cm->is_object()) {
    drift("metrics registry present in only one report");
    return;
  }
  std::vector<std::pair<std::string, std::string>> be, ce;
  collect_deterministic(*bm, &be);
  collect_deterministic(*cm, &ce);
  std::size_t bi = 0, ci = 0;
  // Both registries are name-sorted per kind, so a single merge walk finds
  // added, removed, and changed entries.
  while (bi < be.size() || ci < ce.size()) {
    if (ci >= ce.size() || (bi < be.size() && be[bi].first < ce[ci].first)) {
      drift("metrics." + be[bi].first + ": missing from current");
      ++bi;
    } else if (bi >= be.size() || ce[ci].first < be[bi].first) {
      drift("metrics." + ce[ci].first + ": missing from baseline");
      ++ci;
    } else {
      if (be[bi].second != ce[ci].second) {
        drift("metrics." + be[bi].first + ": baseline " + be[bi].second +
              ", current " + ce[ci].second);
      }
      ++bi;
      ++ci;
    }
  }
}

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: dyncg_bench_diff [--host-tolerance R] [--require] "
               "BASELINE CURRENT\n"
               "  R: current host_seconds may be at most R x baseline "
               "(default 3.0; 0 skips)\n"
               "  --require: a missing/unreadable BASELINE is drift (exit 1)"
               " instead of\n"
               "  a usage error (exit 2) -- for benches whose baseline must "
               "be committed\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double host_tolerance = 3.0;
  bool require_baseline = false;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--host-tolerance") == 0) {
      if (arg + 1 >= argc) return usage();
      char* end = nullptr;
      host_tolerance = std::strtod(argv[arg + 1], &end);
      if (end == argv[arg + 1] || *end != '\0' || host_tolerance < 0.0) {
        return usage();
      }
      arg += 2;
    } else if (std::strcmp(argv[arg], "--require") == 0) {
      require_baseline = true;
      ++arg;
    } else {
      return usage();
    }
  }
  if (argc - arg != 2) return usage();
  const char* base_path = argv[arg];
  const char* cur_path = argv[arg + 1];

  Value base, cur;
  for (auto [path, doc] : {std::pair{base_path, &base}, {cur_path, &cur}}) {
    std::string text, err;
    if (!read_file(path, &text)) {
      if (require_baseline && path == base_path) {
        std::fprintf(stderr,
                     "bench-diff: %s: baseline missing (--require: a gated "
                     "bench must have a committed baseline)\n",
                     path);
        return 1;
      }
      std::fprintf(stderr, "bench-diff: %s: cannot read\n", path);
      return 2;
    }
    if (!dyncg::json::parse(text, doc, &err) || !doc->is_object()) {
      std::fprintf(stderr, "bench-diff: %s: %s\n", path,
                   err.empty() ? "not a JSON object" : err.c_str());
      return 2;
    }
  }

  diff_exact_num(get_num(base, "schema_version", "baseline"),
                 get_num(cur, "schema_version", "current"), "schema_version");
  diff_exact_str(get_str(base, "name", "baseline"),
                 get_str(cur, "name", "current"), "name");
  diff_tables(base, cur);
  diff_faults(base, cur);
  diff_serve(base, cur);
  diff_metrics(base, cur);

  double base_host = get_num(base, "host_seconds", "baseline");
  double cur_host = get_num(cur, "host_seconds", "current");
  std::printf("bench-diff: %s: host %.3fs vs baseline %.3fs (%.2fx), rev %s "
              "vs %s\n",
              get_str(cur, "name", "current").c_str(), cur_host, base_host,
              base_host > 0.0 ? cur_host / base_host : 0.0,
              get_str(cur, "git_rev", "current").c_str(),
              get_str(base, "git_rev", "baseline").c_str());
  if (host_tolerance > 0.0 && cur_host > base_host * host_tolerance) {
    drift("host_seconds regression: " + num_str(cur_host) + " > " +
          num_str(host_tolerance) + " x baseline " + num_str(base_host));
  }

  if (g_drift > 0) {
    std::fprintf(stderr, "bench-diff: %d difference(s) vs %s\n", g_drift,
                 base_path);
    return 1;
  }
  std::printf("bench-diff: ok (ledger figures identical)\n");
  return 0;
}
