// dyncg_cli — command-line driver for the library.
//
//   dyncg_cli <command> [options]
//
// Commands:
//   neighbor    Theorem 4.1: nearest/farthest sequence for a query point
//   pairs       Section 6 ext.: closest/farthest pair sequence
//   collisions  Theorem 4.2: collision times for a query point
//   hullwhen    Theorem 4.5: when is the query a hull vertex
//   contain     Theorem 4.6/4.8: containment intervals / smallest cube
//   steady      Section 5: steady-state survey
//   envelope    Theorem 3.2: min function of random polynomials
//   topo        print a topology's pattern costs
//
// Common options:
//   --n <int>         number of points/functions        (default 8)
//   --k <int>         motion degree                     (default 2)
//   --d <int>         space dimension                   (default 2)
//   --seed <int>      workload seed                     (default 1)
//   --machine <mesh|hypercube|ccc|shuffle>              (default mesh)
//   --query <int>     query point index                 (default 0)
//   --farthest        use the farthest variant
//   --adaptive        adaptive (submesh) envelope
//   --box <w,h,...>   rectangle dimensions for `contain`
//   --file <path>     load the system from a dyncg-motion file
//   --faults <spec>   inject a deterministic fault plan (grammar in
//                     docs/ROBUSTNESS.md, e.g. "link:0-1@0..,drop:2-3@4").
//                     Overrides the DYNCG_FAULTS env var.  The geometric
//                     output is unchanged; the ledger pays the honest
//                     recovery price.
//   --fault-report    print the fault counters after the run
//   --threads <int>   host threads for the simulator (0 = all hardware
//                     threads; overrides DYNCG_THREADS; default 1).  Never
//                     changes the reported rounds/messages/local_ops — see
//                     docs/PARALLELISM.md.
//   --simd <mode>     numeric-kernel dispatch: scalar|avx2|auto (overrides
//                     DYNCG_SIMD; default auto).  Never changes any output
//                     byte — docs/PERFORMANCE.md#simd-kernels.
//   --trace-out <file>  record a span trace of the run and write it to
//                     <file> on exit: Chrome trace_event JSON (load in
//                     chrome://tracing or ui.perfetto.dev), or a flat JSONL
//                     metrics stream when <file> ends in ".jsonl".  Also
//                     accepts --trace-out=<file>.  The DYNCG_TRACE env var
//                     does the same without a flag (docs/OBSERVABILITY.md).
//
// Exit codes (docs/ROBUSTNESS.md): 0 success; 1 I/O error; 2 usage error
// (unknown flags, malformed values); 3 invalid argument; 4 failed
// precondition (machine too small for the workload); 5 parse error
// (malformed motion file or fault spec); 6 unsupported input; 7
// unrecoverable fault.  Library input validation is surfaced as returned
// Status errors, never aborts.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dyncg/allpairs.hpp"
#include "dyncg/collision.hpp"
#include "dyncg/motion_io.hpp"
#include "dyncg/containment.hpp"
#include "dyncg/hull_membership.hpp"
#include "dyncg/proximity.hpp"
#include "envelope/parallel_envelope.hpp"
#include "machine/faults.hpp"
#include "machine/other_topologies.hpp"
#include "pieces/envelope_serial.hpp"
#include "poly/kernels.hpp"
#include "steady/machine_geometry.hpp"
#include "support/fatal.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace {

using namespace dyncg;

struct Options {
  std::string command;
  std::size_t n = 8;
  int k = 2;
  std::size_t d = 2;
  std::uint64_t seed = 1;
  std::string machine = "mesh";
  std::size_t query = 0;
  bool farthest = false;
  bool adaptive = false;
  std::vector<double> box;
  std::string file;  // load the system from a dyncg-motion file instead
  std::string faults;       // --faults spec (overrides DYNCG_FAULTS)
  bool fault_report = false;
  std::string trace_out;  // write a span trace here on exit
};

// Fault plan attached to every machine the commands build (set from
// --faults), and whether to print the counters afterwards.
const FaultPlan* g_cli_faults = nullptr;
bool g_fault_report = false;
// --trace-out path, visible to the fatal-flush hook.
std::string g_trace_out;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <neighbor|pairs|collisions|hullwhen|contain|steady|"
               "envelope|topo> [--n N] [--k K] [--d D] [--seed S] "
               "[--machine mesh|hypercube|ccc|shuffle] [--query Q] "
               "[--farthest] [--adaptive] [--box w,h,...] [--file PATH] "
               "[--threads T] [--simd scalar|avx2|auto] [--faults SPEC] "
               "[--fault-report] [--trace-out FILE]\n",
               argv0);
  std::exit(2);
}

[[noreturn]] void flag_error(const char* argv0, const std::string& flag,
                             const std::string& what,
                             const std::string& got) {
  std::fprintf(stderr, "error: %s expects %s, got '%s'\n", flag.c_str(),
               what.c_str(), got.c_str());
  usage(argv0);
}

// Strict numeric parsing: the whole token must be a number in range.  A
// typo like `--n 1O24` or `--k ""` is a hard error, never a silent zero.
long parse_long(const char* argv0, const std::string& flag, const char* tok,
                long min_value, long max_value) {
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(tok, &end, 10);
  if (end == tok || *end != '\0' || errno == ERANGE || v < min_value ||
      v > max_value) {
    flag_error(argv0, flag, "an integer in [" + std::to_string(min_value) +
                                ", " + std::to_string(max_value) + "]",
               tok);
  }
  return v;
}

double parse_double(const char* argv0, const std::string& flag,
                    const std::string& tok) {
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    flag_error(argv0, flag, "a number", tok);
  }
  return v;
}

Options parse(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Options o;
  o.command = argv[1];
  constexpr long kMaxSize = 1L << 40;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    // --flag=value is accepted everywhere a value flag is.
    std::string inline_value;
    bool has_inline = false;
    if (std::size_t eq = a.find('='); eq != std::string::npos) {
      inline_value = a.substr(eq + 1);
      a = a.substr(0, eq);
      has_inline = true;
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (a == "--n") {
      o.n = static_cast<std::size_t>(
          parse_long(argv[0], a, next().c_str(), 1, kMaxSize));
    } else if (a == "--k") {
      o.k = static_cast<int>(parse_long(argv[0], a, next().c_str(), 0, 64));
    } else if (a == "--d") {
      o.d = static_cast<std::size_t>(
          parse_long(argv[0], a, next().c_str(), 1, 64));
    } else if (a == "--seed") {
      o.seed = static_cast<std::uint64_t>(
          parse_long(argv[0], a, next().c_str(), 0, kMaxSize));
    } else if (a == "--machine") {
      o.machine = next();
      if (o.machine != "mesh" && o.machine != "hypercube" &&
          o.machine != "ccc" && o.machine != "shuffle") {
        flag_error(argv[0], a, "mesh|hypercube|ccc|shuffle", o.machine);
      }
    } else if (a == "--query") {
      o.query = static_cast<std::size_t>(
          parse_long(argv[0], a, next().c_str(), 0, kMaxSize));
    } else if (a == "--farthest") {
      o.farthest = true;
    } else if (a == "--adaptive") {
      o.adaptive = true;
    } else if (a == "--file") {
      o.file = next();
      if (o.file.empty()) flag_error(argv[0], a, "a path", "");
    } else if (a == "--faults") {
      o.faults = next();
      if (o.faults.empty()) flag_error(argv[0], a, "a fault spec", "");
    } else if (a == "--fault-report") {
      o.fault_report = true;
    } else if (a == "--trace-out") {
      o.trace_out = next();
      if (o.trace_out.empty()) flag_error(argv[0], a, "a path", "");
    } else if (a == "--threads") {
      std::string t = next();
      long v = parse_long(argv[0], a, t.c_str(), 0, 1024);
      set_host_threads(static_cast<unsigned>(v));
    } else if (a == "--simd") {
      std::string mode = next();
      if (Status s = kernels::set_simd_mode(mode); !s.is_ok()) {
        flag_error(argv[0], a, "scalar|avx2|auto", mode);
      }
    } else if (a == "--box") {
      std::string spec = next();
      if (spec.empty()) flag_error(argv[0], a, "w,h,...", "");
      std::size_t pos = 0;
      while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::size_t len =
            (comma == std::string::npos ? spec.size() : comma) - pos;
        o.box.push_back(
            parse_double(argv[0], a, spec.substr(pos, len)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a.c_str());
      usage(argv[0]);
    }
  }
  return o;
}

Machine make_machine(const Options& o, std::size_t capacity) {
  if (o.machine == "mesh") return Machine(make_mesh_for(capacity));
  if (o.machine == "hypercube") return Machine(make_hypercube_for(capacity));
  if (o.machine == "ccc") return Machine(make_ccc_for(capacity));
  if (o.machine == "shuffle") {
    return Machine(make_shuffle_exchange_for(capacity));
  }
  std::fprintf(stderr, "unknown machine '%s'\n", o.machine.c_str());
  std::exit(2);
}

// Attach the --faults plan (the DYNCG_FAULTS env plan is picked up by the
// Machine constructor on its own).
void arm(Machine& m) {
  if (g_cli_faults != nullptr) m.set_fault_plan(g_cli_faults);
}

// Print a library Status error and return its process exit code.
int fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
  return st.exit_code();
}

void report_cost(const Machine& m, const CostSnapshot& cost) {
  std::printf("[%s, %zu PEs] %s\n", m.topology().name().c_str(), m.size(),
              cost.to_string().c_str());
  if (g_fault_report) std::fputs(m.fault_report().c_str(), stdout);
}

StatusOr<MotionSystem> make_system(const Options& o) {
  if (!o.file.empty()) return try_load_motion_system(o.file);
  Rng rng(o.seed);
  return random_motion_system(rng, o.n, o.d, o.k);
}

int cmd_neighbor(const Options& o) {
  StatusOr<MotionSystem> sys = make_system(o);
  if (!sys.is_ok()) return fail(sys.status());
  int s = std::max(1, 2 * sys.value().motion_degree());
  Machine m =
      make_machine(o, lambda_upper_bound(ceil_pow2(sys.value().size()), s));
  arm(m);
  CostMeter meter(m.ledger());
  StatusOr<NeighborSequence> seq =
      try_neighbor_sequence(m, sys.value(), o.query, o.farthest);
  if (!seq.is_ok()) return fail(seq.status());
  std::printf("%s\n", seq.value().to_string().c_str());
  report_cost(m, meter.elapsed());
  return 0;
}

int cmd_pairs(const Options& o) {
  StatusOr<MotionSystem> sys = make_system(o);
  if (!sys.is_ok()) return fail(sys.status());
  Machine m = o.machine == "mesh" ? allpairs_machine_mesh(sys.value())
                                  : allpairs_machine_hypercube(sys.value());
  arm(m);
  CostMeter meter(m.ledger());
  PairSequence seq = closest_pair_sequence(m, sys.value(), o.farthest);
  std::printf("%s\n", seq.to_string().c_str());
  report_cost(m, meter.elapsed());
  return 0;
}

int cmd_collisions(const Options& o) {
  StatusOr<MotionSystem> sys = make_system(o);
  if (!sys.is_ok()) return fail(sys.status());
  Machine m = make_machine(o, sys.value().size());
  arm(m);
  CostMeter meter(m.ledger());
  StatusOr<CollisionReport> rep = try_collision_times(m, sys.value(), o.query);
  if (!rep.is_ok()) return fail(rep.status());
  if (rep.value().events.empty()) {
    std::printf("no collisions for P%zu\n", o.query);
  }
  for (const CollisionEvent& e : rep.value().events) {
    std::printf("t = %10.4f  P%zu <-> P%zu\n", e.time, o.query, e.other);
  }
  report_cost(m, meter.elapsed());
  return 0;
}

int cmd_hullwhen(const Options& o) {
  StatusOr<MotionSystem> sys = make_system(o);
  if (!sys.is_ok()) return fail(sys.status());
  Machine m = o.machine == "mesh"
                  ? hull_membership_machine_mesh(sys.value())
                  : hull_membership_machine_hypercube(sys.value());
  arm(m);
  CostMeter meter(m.ledger());
  StatusOr<IntervalSet> hit =
      try_hull_membership_intervals(m, sys.value(), o.query);
  if (!hit.is_ok()) return fail(hit.status());
  std::printf("P%zu is a hull vertex during %s\n", o.query,
              hit.value().to_string().c_str());
  report_cost(m, meter.elapsed());
  return 0;
}

int cmd_contain(const Options& o) {
  StatusOr<MotionSystem> sys = make_system(o);
  if (!sys.is_ok()) return fail(sys.status());
  Machine m = o.machine == "mesh"
                  ? containment_machine_mesh(sys.value())
                  : containment_machine_hypercube(sys.value());
  arm(m);
  CostMeter meter(m.ledger());
  if (!o.box.empty()) {
    std::vector<double> dims = o.box;
    dims.resize(sys.value().dimension(), o.box.back());
    StatusOr<IntervalSet> J = try_containment_intervals(m, sys.value(), dims);
    if (!J.is_ok()) return fail(J.status());
    std::printf("fits the box during %s\n", J.value().to_string().c_str());
  } else {
    SmallestCube cube = smallest_enclosing_cube(m, sys.value());
    std::printf("smallest enclosing cube: edge %.4f at t = %.4f\n", cube.edge,
                cube.time);
  }
  report_cost(m, meter.elapsed());
  return 0;
}

int cmd_steady(const Options& o) {
  Rng rng(o.seed);
  MotionSystem sys = diverging_motion_system(rng, o.n, std::max(1, o.k));
  Machine m = make_machine(o, o.n);
  arm(m);
  CostMeter meter(m.ledger());
  std::printf("steady NN of P%zu: P%zu\n", o.query,
              machine_steady_neighbor(m, sys, o.query, o.farthest));
  auto hull = machine_steady_hull_ids(m, sys);
  std::printf("steady hull: ");
  for (std::size_t id : hull) std::printf("P%zu ", id);
  std::printf("\n");
  auto far = machine_steady_farthest_pair(m, sys);
  std::printf("steady farthest pair: (P%zu, P%zu)\n", far.a, far.b);
  report_cost(m, meter.elapsed());
  return 0;
}

int cmd_envelope(const Options& o) {
  Rng rng(o.seed);
  std::vector<Polynomial> fns;
  for (std::size_t i = 0; i < o.n; ++i) {
    std::vector<double> c(static_cast<std::size_t>(o.k) + 1);
    for (double& x : c) x = rng.uniform(-2, 2);
    fns.push_back(Polynomial(c));
  }
  PolyFamily fam(std::move(fns));
  Machine m = make_machine(o, lambda_upper_bound(ceil_pow2(o.n), o.k));
  arm(m);
  CostMeter meter(m.ledger());
  StatusOr<PiecewiseFn> env =
      try_parallel_envelope(m, fam, std::max(1, o.k),
                            /*take_min=*/!o.farthest, nullptr, o.adaptive);
  if (!env.is_ok()) return fail(env.status());
  std::printf("%s envelope, %zu pieces:\n  %s\n",
              o.farthest ? "upper" : "lower", env.value().piece_count(),
              env.value().to_string().c_str());
  report_cost(m, meter.elapsed());
  return 0;
}

int cmd_topo(const Options& o) {
  Machine m = make_machine(o, o.n);
  const Topology& t = m.topology();
  std::printf("%s: %zu PEs, diameter %zu, unit shift %u rounds\n",
              t.name().c_str(), t.size(), t.diameter(), t.shift_rounds());
  std::printf("offset-exchange rounds:");
  for (int k = 0; (std::size_t{2} << k) <= t.size(); ++k) {
    std::printf(" k=%d:%u", k, t.exchange_rounds(static_cast<unsigned>(k)));
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int run_command(const Options& o, const char* argv0) {
  if (o.command == "neighbor") return cmd_neighbor(o);
  if (o.command == "pairs") return cmd_pairs(o);
  if (o.command == "collisions") return cmd_collisions(o);
  if (o.command == "hullwhen") return cmd_hullwhen(o);
  if (o.command == "contain") return cmd_contain(o);
  if (o.command == "steady") return cmd_steady(o);
  if (o.command == "envelope") return cmd_envelope(o);
  if (o.command == "topo") return cmd_topo(o);
  std::fprintf(stderr, "error: unknown command '%s'\n", o.command.c_str());
  usage(argv0);
}

int main(int argc, char** argv) {
  // Resolve DYNCG_SIMD up front so a typo'd value is a usage error (exit 2)
  // instead of an abort inside the first kernel call; --simd overrides it.
  if (Status s = kernels::init_simd_from_env(); !s.is_ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 2;
  }
  Options o = parse(argc, argv);
  static FaultPlan cli_plan;  // static: outlives every Machine in the cmds
  if (!o.faults.empty()) {
    StatusOr<FaultPlan> parsed = FaultPlan::parse(o.faults);
    if (!parsed.is_ok()) return fail(parsed.status());
    cli_plan = std::move(parsed).value();
    g_cli_faults = &cli_plan;
  }
  g_fault_report = o.fault_report;
  if (!o.trace_out.empty()) {
    trace::enable();
    // Also flush the trace if the run dies on a DYNCG_ASSERT.
    g_trace_out = o.trace_out;
    fatal::register_flush([] {
      if (!g_trace_out.empty()) trace::write(g_trace_out);
    });
  }
  int rc = run_command(o, argv[0]);
  if (!o.trace_out.empty()) {
    if (!trace::write(o.trace_out)) {
      std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                   o.trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu spans -> %s\n", trace::event_count(),
                 o.trace_out.c_str());
  }
  return rc;
}
