// dyncg_serve — envelope-as-a-service: a long-lived daemon answering motion
// scenarios and geometric queries over a line-delimited JSON protocol on
// 127.0.0.1 (src/serve/, wire reference in docs/SERVING.md).
//
//   dyncg_serve [--port N] [--port-file PATH] [--queue-cap N]
//               [--batch-cap N] [--cache-cap N] [--max-line BYTES]
//               [--max-conns N] [--deadline-ms MS] [--drain-ms MS]
//               [--stall-timeout-ms MS] [--max-out-buf BYTES]
//               [--max-fleets N] [--max-fleet-members N]
//               [--threads T] [--simd MODE] [--trace-out FILE]
//               [--metrics-out FILE] [--metrics-interval SECONDS]
//               [--list-ops]
//
// Options:
//   --port N          TCP port; 0 (default) picks an ephemeral port
//   --port-file PATH  write the resolved port here once listening — how
//                     scripts find an ephemerally-bound server
//   --queue-cap N     pending-request limit; at the cap the *oldest*
//                     queued line is shed (answered UNAVAILABLE without
//                     being parsed) to admit the new one     (default 1024)
//   --batch-cap N     max requests processed per batch       (default 64)
//   --cache-cap N     result-cache entries, 0 disables       (default 4096)
//   --max-line BYTES  longest accepted request line          (default 1MiB)
//   --max-conns N     concurrent connections                 (default 64)
//   --deadline-ms MS  default per-request deadline budget, measured from
//                     the line's arrival; a request's own "deadline_ms"
//                     overrides it; expired work is answered
//                     DEADLINE_EXCEEDED without running the engine;
//                     0 disables                             (default 0)
//   --drain-ms MS     graceful-drain budget after SIGTERM: queued work
//                     that cannot finish in time is shed     (default 5000)
//   --stall-timeout-ms MS
//                     close connections with no read/write progress for
//                     this long; 0 disables                  (default 60000)
//   --max-out-buf BYTES
//                     per-connection cap on buffered response bytes;
//                     a reader that stops reading past the cap is
//                     disconnected                           (default 4MiB)
//   --max-fleets N    concurrently open fleet sessions; opening past the
//                     cap is answered UNAVAILABLE            (default 16)
//   --max-fleet-members N
//                     members per fleet session; the session's merge tree
//                     and simulated machine are sized from this at open,
//                     so it bounds per-session memory        (default 1024)
//   --threads T       host threads for batch compute (0 = all hardware
//                     threads; overrides DYNCG_THREADS; default 1).  Never
//                     changes any response byte — docs/PARALLELISM.md.
//   --simd MODE       numeric-kernel dispatch: scalar|avx2|auto (overrides
//                     DYNCG_SIMD; default auto).  Never changes any
//                     response byte — docs/PERFORMANCE.md#simd-kernels.
//   --trace-out FILE  record serve.batch/serve.query spans; written at
//                     shutdown (Chrome trace or .jsonl) and on demand via
//                     the flush_trace op or SIGUSR1 (write-and-clear)
//   --metrics-out FILE
//                     expose the live metrics registry here, rewritten
//                     periodically while serving: ".json" = registry JSON,
//                     anything else Prometheus text (docs/OBSERVABILITY.md)
//   --metrics-interval SECONDS
//                     rewrite cadence for --metrics-out     (default 5)
//   --list-ops        print every protocol op name, one per line, and exit
//                     (tools/dyncg_doc_check.sh scrapes this)
//
// SIGTERM starts a graceful drain (docs/SERVING.md#draining): stop
// accepting, answer new lines UNAVAILABLE with "draining":true, finish or
// shed queued work within --drain-ms, flush artifacts, exit 0.  SIGINT
// stops immediately (flush what can be flushed without blocking, exit 0).
// SIGUSR1 write-and-clears the trace file without stopping.  Exit
// 1 = socket/trace I/O error, 2 = usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "poly/kernels.hpp"
#include "serve/server.hpp"
#include "support/build_info.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace {

using namespace dyncg;

serve::Server* g_server = nullptr;

void on_term(int) {
  if (g_server != nullptr) g_server->request_drain();
}

void on_int(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void on_flush_signal(int) {
  if (g_server != nullptr) g_server->request_trace_flush();
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: dyncg_serve [--port N] [--port-file PATH] "
               "[--queue-cap N] [--batch-cap N] [--cache-cap N] "
               "[--max-line BYTES] [--max-conns N] [--deadline-ms MS] "
               "[--drain-ms MS] [--stall-timeout-ms MS] "
               "[--max-out-buf BYTES] [--max-fleets N] "
               "[--max-fleet-members N] [--threads T] "
               "[--simd scalar|avx2|auto] [--trace-out FILE] "
               "[--metrics-out FILE] [--metrics-interval SECONDS] "
               "[--list-ops]\n");
  std::exit(2);
}

std::string stamp_git_rev() {
#if defined(DYNCG_SOURCE_DIR)
  const char* src = DYNCG_SOURCE_DIR;
#else
  const char* src = nullptr;
#endif
#if defined(DYNCG_GIT_REV)
  const char* baked = DYNCG_GIT_REV;
#else
  const char* baked = nullptr;
#endif
  return git_revision(src, baked);
}

long parse_long(const std::string& flag, const char* tok, long min_value,
                long max_value) {
  char* end = nullptr;
  long v = std::strtol(tok, &end, 10);
  if (end == tok || *end != '\0' || v < min_value || v > max_value) {
    std::fprintf(stderr, "error: %s expects an integer in [%ld, %ld], got '%s'\n",
                 flag.c_str(), min_value, max_value, tok);
    usage();
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  // Resolve DYNCG_SIMD before serving so a typo is a usage error here
  // rather than an abort inside the first batch (--simd overrides it).
  if (Status s = kernels::init_simd_from_env(); !s.is_ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 2;
  }
  serve::ServerOptions opt;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--list-ops") {
      for (serve::Op op : serve::kAllOps) std::printf("%s\n", op_name(op));
      return 0;
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (std::size_t eq = a.find('='); eq != std::string::npos) {
      inline_value = a.substr(eq + 1);
      a = a.substr(0, eq);
      has_inline = true;
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        usage();
      }
      return argv[++i];
    };
    if (a == "--port") {
      opt.port = static_cast<int>(parse_long(a, next().c_str(), 0, 65535));
    } else if (a == "--port-file") {
      opt.port_file = next();
      if (opt.port_file.empty()) usage();
    } else if (a == "--queue-cap") {
      opt.queue_cap = static_cast<std::size_t>(
          parse_long(a, next().c_str(), 1, 1 << 20));
    } else if (a == "--batch-cap") {
      opt.batch_cap = static_cast<std::size_t>(
          parse_long(a, next().c_str(), 1, 1 << 20));
    } else if (a == "--cache-cap") {
      opt.cache_cap = static_cast<std::size_t>(
          parse_long(a, next().c_str(), 0, 1 << 24));
    } else if (a == "--max-line") {
      opt.max_line = static_cast<std::size_t>(
          parse_long(a, next().c_str(), 64, 1 << 28));
    } else if (a == "--max-conns") {
      opt.max_conns = static_cast<std::size_t>(
          parse_long(a, next().c_str(), 1, 4096));
    } else if (a == "--deadline-ms") {
      opt.deadline_ms = static_cast<std::uint64_t>(
          parse_long(a, next().c_str(), 0, 3600000));
    } else if (a == "--drain-ms") {
      opt.drain_ms = static_cast<std::uint64_t>(
          parse_long(a, next().c_str(), 0, 3600000));
    } else if (a == "--stall-timeout-ms") {
      opt.stall_timeout_ms = static_cast<std::uint64_t>(
          parse_long(a, next().c_str(), 0, 86400000));
    } else if (a == "--max-out-buf") {
      opt.max_out_buf = static_cast<std::size_t>(
          parse_long(a, next().c_str(), 1024, 1 << 30));
    } else if (a == "--max-fleets") {
      opt.max_fleets = static_cast<std::size_t>(
          parse_long(a, next().c_str(), 0, 1 << 16));
    } else if (a == "--max-fleet-members") {
      opt.max_fleet_members = static_cast<std::size_t>(
          parse_long(a, next().c_str(), 1, 1 << 20));
    } else if (a == "--threads") {
      set_host_threads(
          static_cast<unsigned>(parse_long(a, next().c_str(), 0, 1024)));
    } else if (a == "--simd") {
      if (Status s = kernels::set_simd_mode(next()); !s.is_ok()) {
        std::fprintf(stderr, "error: %s\n", s.message().c_str());
        usage();
      }
    } else if (a == "--trace-out") {
      trace_out = next();
      if (trace_out.empty()) usage();
    } else if (a == "--metrics-out") {
      opt.metrics_out = next();
      if (opt.metrics_out.empty()) usage();
    } else if (a == "--metrics-interval") {
      opt.metrics_interval_s =
          static_cast<unsigned>(parse_long(a, next().c_str(), 0, 86400));
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a.c_str());
      usage();
    }
  }

  if (!trace_out.empty()) trace::enable();
  opt.trace_out = trace_out;
  opt.git_rev = stamp_git_rev();
  metrics::enable();  // the serving path is always observable

  serve::Server server(opt);
  g_server = &server;
  std::signal(SIGTERM, on_term);  // graceful drain
  std::signal(SIGINT, on_int);    // immediate stop
  std::signal(SIGUSR1, on_flush_signal);
  std::signal(SIGPIPE, SIG_IGN);  // peer hangups surface as write errors

  Status st = server.run();
  if (!st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return st.exit_code();
  }
  serve::ServeStats s = server.stats();
  std::fprintf(stderr,
               "dyncg_serve: shutdown after %llu requests "
               "(%llu hits, %llu misses, %llu evictions, %llu rejected, "
               "%llu shed, %llu deadline_exceeded, %llu errors, "
               "%llu batches, %llu connections)\n",
               static_cast<unsigned long long>(s.requests),
               static_cast<unsigned long long>(s.hits),
               static_cast<unsigned long long>(s.misses),
               static_cast<unsigned long long>(s.evictions),
               static_cast<unsigned long long>(s.rejected),
               static_cast<unsigned long long>(s.shed),
               static_cast<unsigned long long>(s.deadline_exceeded),
               static_cast<unsigned long long>(s.errors),
               static_cast<unsigned long long>(s.batches),
               static_cast<unsigned long long>(s.connections));
  if (!trace_out.empty()) {
    if (!trace::write(trace_out)) {
      std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                   trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu spans -> %s\n", trace::event_count(),
                 trace_out.c_str());
  }
  return 0;
}
