// dyncg_chaos — seeded socket-abuse harness for dyncg_serve
// (docs/ROBUSTNESS.md#serving-resilience).
//
//   dyncg_chaos (--port N | --port-file PATH) [--seed S] [--rounds R]
//               [--concurrency C] [--max-line BYTES] [--timeout-ms MS]
//               [--oracle]
//
// Drives a live server through a deterministic (seeded) schedule of client
// lanes, most of them hostile:
//
//   tracked   well-behaved closed-loop clients sending valid geometric
//             queries (plus a sprinkle of known-invalid lines); every
//             response is checked — one response per request, in request
//             order, status from the known set, and (--oracle) OK results
//             byte-identical to an in-process recompute through the same
//             serve::run_query the server uses
//   flood     one connection bursting pings far past the queue cap in a
//             single write, then reading back exactly one response per line
//             (sheds come back UNAVAILABLE — they still count)
//   trickle   a valid request dripped one byte per event-loop tick — slow,
//             but making progress, so the stall reaper must spare it
//   midline   half a request, no newline, then an abrupt close
//   neverread pipelines pings and never reads a byte — the server's
//             output-buffer cap must disconnect it, not grow
//   oversize  a line longer than the server's --max-line; expects
//             INVALID_ARGUMENT
//
// After every lane finishes (or the harness times out — a timeout is a
// deadlock verdict), a fresh connection checks liveness (ping) and fetches
// `stats` + `metrics` to assert the accounting identity
//
//   requests == responses.ok + errors + shed + deadline_exceeded
//
// i.e. serve.shed / serve.deadline_exceeded account for every request that
// was accepted but not completed.  Exit codes: 0 all invariants held;
// 1 connect/socket setup failure; 2 usage; 3 invariant violation (details
// on stderr).
//
// The schedule, lane payloads, and interleaving are pure functions of
// --seed; wall-clock timing is not, so assertions never compare
// timing-dependent figures — the determinism claims (byte-identical
// responses, exact counters) are checked per-response via the oracle, not
// by comparing two chaotic runs.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "poly/kernels.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace dyncg;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: dyncg_chaos (--port N | --port-file PATH) [--seed S] "
               "[--rounds R] [--concurrency C] [--max-line BYTES] "
               "[--timeout-ms MS] [--oracle]\n");
  std::exit(2);
}

long parse_long(const std::string& flag, const char* tok, long min_value,
                long max_value) {
  char* end = nullptr;
  long v = std::strtol(tok, &end, 10);
  if (end == tok || *end != '\0' || v < min_value || v > max_value) {
    std::fprintf(stderr,
                 "error: %s expects an integer in [%ld, %ld], got '%s'\n",
                 flag.c_str(), min_value, max_value, tok);
    usage();
  }
  return v;
}

int g_violations = 0;

void violation(const std::string& msg) {
  ++g_violations;
  std::fprintf(stderr, "VIOLATION: %s\n", msg.c_str());
}

// --- lanes ------------------------------------------------------------------

enum class Kind { kTracked, kFlood, kTrickle, kMidline, kNeverRead, kOversize };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kTracked: return "tracked";
    case Kind::kFlood: return "flood";
    case Kind::kTrickle: return "trickle";
    case Kind::kMidline: return "midline";
    case Kind::kNeverRead: return "neverread";
    case Kind::kOversize: return "oversize";
  }
  return "?";
}

struct Sent {
  std::string line;     // the request as written
  bool expect_ok;       // false = the lane knows this line is invalid
};

struct Lane {
  Kind kind = Kind::kTracked;
  int id = 0;
  int fd = -1;
  bool started = false;
  bool done = false;
  std::string inbuf;            // partial response bytes
  std::string outbuf;           // bytes queued for the socket
  std::deque<Sent> script;      // requests not yet queued to outbuf
  std::deque<Sent> awaiting;    // requests written, response pending
  std::size_t trickle_budget = 0;  // max bytes written per tick (0 = all)
  int linger_ticks = 0;            // midline: ticks to wait before closing
  std::size_t responses = 0;
};

// Statuses a response may legally carry.  Anything else (or non-JSON) is a
// protocol violation.
bool known_status(const std::string& s) {
  return s == "OK" || s == "INVALID_ARGUMENT" || s == "PARSE_ERROR" ||
         s == "UNAVAILABLE" || s == "DEADLINE_EXCEEDED";
}

bool oracle_enabled = false;

// Verify one response line against the oldest in-flight request of the
// lane.  Responses arrive in request order per connection; error responses
// rendered before parsing carry no id, so the id is only matched when
// present.
void check_response(Lane& lane, const std::string& line) {
  ++lane.responses;
  if (lane.awaiting.empty()) {
    violation(std::string(kind_name(lane.kind)) + " lane " +
              std::to_string(lane.id) + ": unsolicited response: " + line);
    return;
  }
  Sent sent = lane.awaiting.front();
  lane.awaiting.pop_front();
  json::Value v;
  if (!json::parse(line, &v) || !v.is_object()) {
    violation("response is not a JSON object: " + line);
    return;
  }
  const json::Value* status = v.find("status");
  if (status == nullptr || !status->is_string() ||
      !known_status(status->string)) {
    violation("response carries no known status: " + line);
    return;
  }
  if (status->string == "OK" && !sent.expect_ok) {
    violation("known-invalid request was answered OK: " + sent.line);
    return;
  }
  if (status->string != "OK") return;  // errors/sheds carry no result
  if (!oracle_enabled) return;
  StatusOr<serve::Request> req = serve::parse_request(sent.line);
  if (!req.is_ok()) {
    violation("server accepted a request the parser rejects: " + sent.line);
    return;
  }
  if (serve::is_admin_op(req.value().op)) return;
  StatusOr<serve::CachedResult> want = serve::run_query(req.value());
  if (!want.is_ok()) {
    violation("server answered OK where the oracle fails: " + sent.line);
    return;
  }
  const json::Value* result = v.find("result");
  if (result == nullptr || !result->is_string() ||
      result->string != want.value().text) {
    violation("oracle mismatch (completed response differs from an "
              "in-process recompute) for: " + sent.line);
  }
}

// --- seeded request generation ----------------------------------------------

std::string make_query(Rng& rng, const std::string& id, bool* expect_ok) {
  static const char* kOps[] = {"neighbor", "collisions", "hullwhen",
                               "contain", "pairs"};
  int pick = rng.uniform_int(0, 11);
  *expect_ok = true;
  if (pick == 10) {
    *expect_ok = false;
    return "{\"op\":\"frobnicate\",\"id\":\"" + id + "\"}";
  }
  if (pick == 11) {
    *expect_ok = false;
    return "{\"op\":";  // malformed JSON: PARSE_ERROR
  }
  if (pick == 9) {
    return "{\"op\":\"ping\",\"id\":\"" + id + "\"}";
  }
  const char* op = kOps[pick % 5];
  int n = rng.uniform_int(4, 8);
  json::Writer w;
  w.begin_object();
  w.key("op");
  w.value(op);
  w.key("id");
  w.value(id);
  w.key("scenario");
  w.begin_object();
  w.key("seed");
  w.value(static_cast<std::uint64_t>(rng.uniform_int(1, 4)));
  w.key("n");
  w.value(static_cast<std::uint64_t>(n));
  w.key("d");
  w.value(std::uint64_t{2});
  w.key("k");
  w.value(std::uint64_t{1});
  w.end_object();
  w.key("machine");
  w.value(rng.uniform_int(0, 1) == 0 ? "mesh" : "hypercube");
  bool pointless = std::strcmp(op, "pairs") == 0 ||
                   std::strcmp(op, "contain") == 0;
  if (!pointless) {
    w.key("query");
    w.value(static_cast<std::uint64_t>(rng.uniform_int(0, n - 1)));
  }
  if (rng.uniform_int(0, 9) == 0) {
    // Exercise the deadline path; under load these may legitimately come
    // back DEADLINE_EXCEEDED, which known_status() accepts.
    w.key("deadline_ms");
    w.value(static_cast<std::uint64_t>(rng.uniform_int(1, 2000)));
  }
  w.end_object();
  return w.str();
}

Lane make_lane(Rng& rng, int id, std::size_t server_max_line) {
  Lane lane;
  lane.id = id;
  int pick = rng.uniform_int(0, 19);
  if (pick < 8) {
    lane.kind = Kind::kTracked;
    int count = rng.uniform_int(2, 6);
    for (int i = 0; i < count; ++i) {
      bool expect_ok = true;
      std::string rid = "t" + std::to_string(id) + "." + std::to_string(i);
      std::string line = make_query(rng, rid, &expect_ok);
      lane.script.push_back(Sent{line, expect_ok});
    }
  } else if (pick < 11) {
    lane.kind = Kind::kFlood;
    // Sized so even a fully-shed burst (~70 B per shed response, queued in
    // one batch with no flush in between) stays under the tight 4 KiB
    // output cap serve_chaos.sh runs with: a flood lane must be answered,
    // never itself cut by the slow-client defense.
    int count = rng.uniform_int(16, 40);
    for (int i = 0; i < count; ++i) {
      std::string rid = "f" + std::to_string(id) + "." + std::to_string(i);
      lane.script.push_back(
          Sent{"{\"op\":\"ping\",\"id\":\"" + rid + "\"}", true});
    }
  } else if (pick < 13) {
    lane.kind = Kind::kTrickle;
    bool expect_ok = true;
    lane.script.push_back(
        Sent{make_query(rng, "s" + std::to_string(id), &expect_ok), true});
    lane.script.back().expect_ok = expect_ok;
    lane.trickle_budget = 1;
  } else if (pick < 16) {
    lane.kind = Kind::kMidline;
    lane.linger_ticks = rng.uniform_int(2, 30);
  } else if (pick < 18) {
    lane.kind = Kind::kNeverRead;
    int count = rng.uniform_int(128, 512);
    for (int i = 0; i < count; ++i) {
      lane.script.push_back(
          Sent{"{\"op\":\"ping\",\"id\":\"n" + std::to_string(id) + "." +
                   std::to_string(i) + "\"}",
               true});
    }
    // Stay connected (never reading) after the burst so response bytes
    // actually pile up server-side and the output-buffer cap has to act.
    lane.linger_ticks = rng.uniform_int(100, 300);
  } else {
    lane.kind = Kind::kOversize;
    // One line comfortably past the server's cap; answered
    // INVALID_ARGUMENT and discarded up to the newline.
    std::string big = "{\"op\":\"ping\",\"id\":\"";
    big.append(server_max_line + 64, 'x');
    big += "\"}";
    lane.script.push_back(Sent{big, false});
  }
  return lane;
}

// --- sockets ----------------------------------------------------------------

int connect_to(int port, bool tiny_rcvbuf) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (tiny_rcvbuf) {
    // A never-reading client with a tiny receive window forces response
    // bytes to pile up on the server side, where the output-buffer cap
    // must cut the connection.
    int rcv = 2048;
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof(rcv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

// Blocking round-trip helper for the final liveness/accounting phase.
bool round_trip(int fd, const std::string& request, std::string* response,
                std::string* buf) {
  std::string out = request + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    ssize_t n = write(fd, out.data() + off, out.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  for (;;) {
    std::size_t nl = buf->find('\n');
    if (nl != std::string::npos) {
      *response = buf->substr(0, nl);
      buf->erase(0, nl + 1);
      return true;
    }
    char chunk[65536];
    ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buf->append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);  // hostile lanes write into dead sockets
  if (Status s = kernels::init_simd_from_env(); !s.is_ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 2;
  }
  int port = -1;
  std::string port_file;
  std::uint64_t seed = 1;
  int rounds = 48;
  int concurrency = 10;
  std::size_t server_max_line = 512;
  long timeout_ms = 60000;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (std::size_t eq = a.find('='); eq != std::string::npos) {
      inline_value = a.substr(eq + 1);
      a = a.substr(0, eq);
      has_inline = true;
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        usage();
      }
      return argv[++i];
    };
    if (a == "--port") {
      port = static_cast<int>(parse_long(a, next().c_str(), 1, 65535));
    } else if (a == "--port-file") {
      port_file = next();
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(
          parse_long(a, next().c_str(), 0, 1L << 40));
    } else if (a == "--rounds") {
      rounds = static_cast<int>(parse_long(a, next().c_str(), 1, 4096));
    } else if (a == "--concurrency") {
      concurrency = static_cast<int>(parse_long(a, next().c_str(), 1, 64));
    } else if (a == "--max-line") {
      server_max_line = static_cast<std::size_t>(
          parse_long(a, next().c_str(), 64, 1 << 28));
    } else if (a == "--timeout-ms") {
      timeout_ms = parse_long(a, next().c_str(), 1000, 3600000);
    } else if (a == "--oracle") {
      oracle_enabled = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a.c_str());
      usage();
    }
  }
  if (port < 0 && port_file.empty()) usage();
  if (port < 0) {
    for (int attempt = 0; attempt < 100 && port < 0; ++attempt) {
      std::ifstream in(port_file);
      int p = 0;
      if (in >> p && p > 0) {
        port = p;
        break;
      }
      usleep(100 * 1000);
    }
    if (port < 0) {
      std::fprintf(stderr, "error: no port in %s\n", port_file.c_str());
      return 1;
    }
  }

  // The full schedule is generated up front: lane kinds and payloads are a
  // pure function of --seed, so a failing run replays exactly.
  Rng rng(seed);
  std::vector<Lane> lanes;
  lanes.reserve(static_cast<std::size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    lanes.push_back(make_lane(rng, i, server_max_line));
  }

  using clock = std::chrono::steady_clock;
  const clock::time_point t0 = clock::now();
  const auto deadline = t0 + std::chrono::milliseconds(timeout_ms);
  std::size_t next_lane = 0;
  std::size_t lanes_done = 0;
  std::size_t counts[6] = {0, 0, 0, 0, 0, 0};

  while (lanes_done < lanes.size()) {
    if (clock::now() >= deadline) {
      // Lanes still waiting on responses after the global timeout mean the
      // server wedged (or stopped answering) — the deadlock verdict.
      for (const Lane& lane : lanes) {
        if (lane.started && !lane.done &&
            (lane.kind == Kind::kTracked || lane.kind == Kind::kFlood ||
             lane.kind == Kind::kTrickle || lane.kind == Kind::kOversize)) {
          violation(std::string(kind_name(lane.kind)) + " lane " +
                    std::to_string(lane.id) + " still has " +
                    std::to_string(lane.awaiting.size()) +
                    " unanswered requests at timeout (deadlock?)");
        }
      }
      break;
    }
    // Admit new lanes up to the concurrency cap (which stays below the
    // server's --max-conns so no lane is rejected at accept).
    std::size_t active = 0;
    for (const Lane& lane : lanes) {
      if (lane.started && !lane.done) ++active;
    }
    while (next_lane < lanes.size() &&
           active < static_cast<std::size_t>(concurrency)) {
      Lane& lane = lanes[next_lane++];
      lane.fd = connect_to(port, lane.kind == Kind::kNeverRead);
      if (lane.fd < 0) {
        std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%d\n",
                     port);
        return 1;
      }
      lane.started = true;
      ++counts[static_cast<std::size_t>(lane.kind)];
      ++active;
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_lane;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      Lane& lane = lanes[i];
      if (!lane.started || lane.done || lane.fd < 0) continue;
      short events = 0;
      if (lane.kind != Kind::kNeverRead) events |= POLLIN;
      if (!lane.outbuf.empty() || !lane.script.empty()) events |= POLLOUT;
      fds.push_back(pollfd{lane.fd, events, 0});
      fd_lane.push_back(i);
    }
    if (!fds.empty()) poll(fds.data(), fds.size(), 5);

    for (std::size_t i = 0; i < fd_lane.size(); ++i) {
      Lane& lane = lanes[fd_lane[i]];
      short re = fds[i].revents;

      // Queue work into outbuf according to the lane's discipline.
      if (lane.outbuf.empty() && !lane.script.empty()) {
        if (lane.kind == Kind::kTracked || lane.kind == Kind::kTrickle) {
          if (lane.awaiting.empty()) {  // closed loop: one in flight
            Sent s = lane.script.front();
            lane.script.pop_front();
            lane.outbuf = s.line + "\n";
            lane.awaiting.push_back(std::move(s));
          }
        } else {  // flood / neverread / oversize: everything at once
          while (!lane.script.empty()) {
            Sent s = lane.script.front();
            lane.script.pop_front();
            lane.outbuf += s.line;
            lane.outbuf += '\n';
            lane.awaiting.push_back(std::move(s));
          }
        }
      }
      if (lane.kind == Kind::kMidline && lane.outbuf.empty() &&
          lane.responses == 0) {
        lane.outbuf = "{\"op\":\"ping\",\"id\":\"m" +
                      std::to_string(lane.id) + "\",\"mach";  // no newline
        lane.responses = 1;  // marker: half-line queued once
      }

      // Write phase (bounded for trickle lanes).
      if ((re & (POLLOUT | POLLERR | POLLHUP)) != 0 &&
          !lane.outbuf.empty()) {
        std::size_t want = lane.trickle_budget != 0
                               ? std::min(lane.trickle_budget,
                                          lane.outbuf.size())
                               : lane.outbuf.size();
        ssize_t n = write(lane.fd, lane.outbuf.data(), want);
        if (n > 0) {
          lane.outbuf.erase(0, static_cast<std::size_t>(n));
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          // The server cut us off.  For neverread lanes that is the
          // expected outcome (output-buffer overflow); for midline lanes
          // any outcome is fine; a tracked/flood/trickle/oversize lane
          // losing its socket mid-run breaks answered-exactly-once.
          if (lane.kind == Kind::kTracked || lane.kind == Kind::kFlood ||
              lane.kind == Kind::kTrickle || lane.kind == Kind::kOversize) {
            violation(std::string(kind_name(lane.kind)) + " lane " +
                      std::to_string(lane.id) +
                      " lost its connection on write (errno " +
                      std::to_string(errno) + ")");
          }
          close(lane.fd);
          lane.fd = -1;
          lane.done = true;
          ++lanes_done;
          continue;
        }
      }

      // Read phase.
      if (lane.kind != Kind::kNeverRead &&
          (re & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[65536];
        for (;;) {
          ssize_t n = read(lane.fd, chunk, sizeof(chunk));
          if (n > 0) {
            lane.inbuf.append(chunk, static_cast<std::size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          // EOF / reset.
          if (!lane.awaiting.empty() || !lane.script.empty()) {
            if (lane.kind != Kind::kMidline) {
              violation(std::string(kind_name(lane.kind)) + " lane " +
                        std::to_string(lane.id) + " got EOF with " +
                        std::to_string(lane.awaiting.size() +
                                       lane.script.size()) +
                        " requests unanswered");
            }
          }
          close(lane.fd);
          lane.fd = -1;
          lane.done = true;
          ++lanes_done;
          break;
        }
        if (lane.done) continue;
        for (;;) {
          std::size_t nl = lane.inbuf.find('\n');
          if (nl == std::string::npos) break;
          std::string line = lane.inbuf.substr(0, nl);
          lane.inbuf.erase(0, nl + 1);
          check_response(lane, line);
        }
      }

      // Lane-specific completion.
      bool finished = false;
      switch (lane.kind) {
        case Kind::kTracked:
        case Kind::kTrickle:
        case Kind::kFlood:
        case Kind::kOversize:
          finished = lane.script.empty() && lane.awaiting.empty() &&
                     lane.outbuf.empty();
          break;
        case Kind::kMidline:
          if (lane.outbuf.empty() && lane.responses == 1) {
            if (--lane.linger_ticks <= 0) finished = true;
          }
          break;
        case Kind::kNeverRead:
          // Everything written: hold the socket open without reading until
          // the server's output-buffer cap cuts us off (POLLHUP/POLLERR)
          // or the linger budget runs out.
          if (lane.script.empty() && lane.outbuf.empty()) {
            if ((re & (POLLHUP | POLLERR)) != 0) finished = true;
            if (--lane.linger_ticks <= 0) finished = true;
          }
          break;
      }
      if (finished) {
        close(lane.fd);
        lane.fd = -1;
        lane.done = true;
        ++lanes_done;
      }
    }
  }

  // Give the server one poll cycle to finish any leftover lines from lanes
  // that closed without reading (their requests still get processed and
  // counted), so the accounting snapshot below is quiescent.
  usleep(600 * 1000);

  // --- liveness + accounting ------------------------------------------------
  int fd = connect_to(port, false);
  if (fd >= 0) {
    int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  if (fd < 0) {
    violation("server refused the post-chaos liveness connection");
  } else {
    std::string buf;
    std::string response;
    if (!round_trip(fd, "{\"op\":\"ping\",\"id\":\"final\"}", &response,
                    &buf) ||
        response.find("\"status\":\"OK\"") == std::string::npos) {
      violation("post-chaos ping failed (server dead or wedged): " +
                response);
    }
    std::string stats_line;
    std::string metrics_line;
    if (!round_trip(fd, "{\"op\":\"stats\"}", &stats_line, &buf) ||
        !round_trip(fd, "{\"op\":\"metrics\"}", &metrics_line, &buf)) {
      violation("post-chaos stats/metrics round-trip failed");
    } else {
      json::Value sv;
      json::Value mv;
      const json::Value* stats = nullptr;
      if (!json::parse(stats_line, &sv) ||
          (stats = sv.find("stats")) == nullptr || !stats->is_object()) {
        violation("malformed stats response: " + stats_line);
      } else if (!json::parse(metrics_line, &mv)) {
        violation("malformed metrics response: " + metrics_line);
      } else {
        auto counter = [&](const char* key) -> std::uint64_t {
          const json::Value* c = stats->find(key);
          return c != nullptr && c->is_number()
                     ? static_cast<std::uint64_t>(c->number)
                     : 0;
        };
        std::uint64_t requests = counter("requests");
        std::uint64_t errors = counter("errors");
        std::uint64_t shed = counter("shed");
        std::uint64_t deadline_exceeded = counter("deadline_exceeded");
        // serve.responses.ok from the registry embedded in the metrics
        // response; rendered after the stats response, so it covers the
        // ping and stats round-trips exactly (see the identity below).
        std::uint64_t responses_ok = 0;
        bool found = false;
        if (const json::Value* m = mv.find("metrics")) {
          if (const json::Value* counters = m->find("counters")) {
            for (const json::Value& c : counters->array) {
              const json::Value* name = c.find("name");
              const json::Value* value = c.find("value");
              if (name != nullptr && name->is_string() &&
                  name->string == "serve.responses.ok" && value != nullptr) {
                responses_ok = static_cast<std::uint64_t>(value->number);
                found = true;
              }
            }
          }
        }
        if (!found) {
          violation("serve.responses.ok missing from the metrics registry");
        } else if (requests != responses_ok + errors + shed +
                                   deadline_exceeded) {
          // stats.requests includes the final ping + the stats request
          // itself; responses.ok (snapshotted one batch later, before the
          // metrics response increments it) includes their two OK
          // responses — the +2s cancel, so the identity is exact.
          violation(
              "accounting identity broken: requests=" +
              std::to_string(requests) + " != responses.ok=" +
              std::to_string(responses_ok) + " + errors=" +
              std::to_string(errors) + " + shed=" + std::to_string(shed) +
              " + deadline_exceeded=" + std::to_string(deadline_exceeded));
        } else {
          std::fprintf(stderr,
                       "dyncg_chaos: accounting holds: %llu requests = "
                       "%llu ok + %llu errors + %llu shed + %llu "
                       "deadline_exceeded\n",
                       static_cast<unsigned long long>(requests),
                       static_cast<unsigned long long>(responses_ok),
                       static_cast<unsigned long long>(errors),
                       static_cast<unsigned long long>(shed),
                       static_cast<unsigned long long>(deadline_exceeded));
        }
      }
    }
    close(fd);
  }

  double elapsed =
      std::chrono::duration<double>(clock::now() - t0).count();
  std::fprintf(stderr,
               "dyncg_chaos: seed %llu, %d lanes in %.2fs "
               "(%zu tracked, %zu flood, %zu trickle, %zu midline, "
               "%zu neverread, %zu oversize), %d violation(s)\n",
               static_cast<unsigned long long>(seed), rounds, elapsed,
               counts[0], counts[1], counts[2], counts[3], counts[4],
               counts[5], g_violations);
  return g_violations == 0 ? 0 : 3;
}
