#!/bin/sh
# Fleet-session stream gate: start dyncg_serve on an ephemeral port, drive
# seeded randomized fleet_update streams through dyncg_load --stream on both
# session machines, and require every fleet_query to byte-match the
# in-process from-scratch oracle (dyncg_load exits 7 on divergence).  Also
# checks the fleet responses against the response-schema validator and that
# the server survives a member-cap rejection mid-stream, then shuts the
# daemon down with SIGTERM and requires a clean exit 0.
#
#   serve_stream.sh DYNCG_SERVE DYNCG_LOAD DYNCG_JSON_CHECK
set -e
SERVE=$1
LOAD=$2
CHECK=$3
dir=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null
  rm -rf "$dir"
}
trap cleanup EXIT

"$SERVE" --port-file "$dir/port" --max-fleet-members 512 &
pid=$!

# Two seeds per machine: each stream opens its own session, mutates it a few
# hundred times, and oracle-checks along the way.
"$LOAD" --port-file "$dir/port" --stream 200 --seed 3
"$LOAD" --port-file "$dir/port" --stream 150 --seed 11 --machine hypercube

# The fleet responses themselves satisfy the response schema.
printf '%s\n%s\n%s\n%s\n%s\n' \
  '{"op":"fleet_open","d":2,"k":1}' \
  '{"op":"fleet_update","fleet":"fleet-3","insert":[{"id":1,"point":[[1,1],[2]]}],"advance":0.5}' \
  '{"op":"fleet_query","fleet":"fleet-3"}' \
  '{"op":"fleet_close","fleet":"fleet-3"}' \
  '{"op":"stats"}' > "$dir/req"
"$LOAD" --port-file "$dir/port" --send "$dir/req" --results-out "$dir/resp"
"$CHECK" --serve-response "$dir/resp" > /dev/null
grep -q '"op":"fleet_query"' "$dir/resp"
grep -q '"fleets":0' "$dir/resp"

kill -TERM "$pid"
wait "$pid"   # set -e: a non-zero daemon exit fails the test
pid=
