#!/bin/sh
# End-to-end test of the serving stack (docs/SERVING.md):
#
#   1. byte-identity  — a mixed batch (3 ops x 3 scenarios) served over the
#      socket must decode to exactly the bytes dyncg_cli prints for the
#      same scenarios (minus the CLI's trailing cost line);
#   2. cache counters — after 3 identical passes plus the decode pass the
#      server must report exactly 9 misses and 27 hits (FIFO cache +
#      ordered stream = exact counters, docs/SERVING.md#cache);
#   3. error paths    — malformed JSON, unknown ops, out-of-range
#      scenarios, and over-long lines are rejected with the documented
#      status names, and the connection stays usable afterwards;
#   4. shutdown       — both daemons exit 0 on SIGTERM;
# plus schema validation of every request and response line exchanged
# (dyncg_json_check --serve-request / --serve-response).
#
#   serve_e2e.sh DYNCG_SERVE DYNCG_LOAD DYNCG_CLI DYNCG_JSON_CHECK
set -e
SERVE=$1
LOAD=$2
CLI=$3
CHECK=$4
dir=$(mktemp -d)
pid=
pid2=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null
  [ -n "$pid2" ] && kill "$pid2" 2>/dev/null
  rm -rf "$dir"
}
trap cleanup EXIT

"$SERVE" --port-file "$dir/port" &
pid=$!

# --- 1. mixed batch vs the CLI oracle -------------------------------------
# 9 unique requests: neighbor / collisions / contain over seeds 1..3.
: > "$dir/uniq"
for seed in 1 2 3; do
  {
    echo '{"op":"neighbor","scenario":{"seed":'$seed',"n":8,"k":1},"query":0}'
    echo '{"op":"collisions","scenario":{"seed":'$seed',"n":8,"k":1},"query":1}'
    echo '{"op":"contain","scenario":{"seed":'$seed',"n":8,"k":1},"box":[8,6]}'
  } >> "$dir/uniq"
done
"$CHECK" --serve-request "$dir/uniq" > /dev/null

# Three identical passes: pass 1 -> 9 misses, passes 2-3 -> 18 hits.
cat "$dir/uniq" "$dir/uniq" "$dir/uniq" > "$dir/reqs"
"$LOAD" --port-file "$dir/port" --send "$dir/reqs" --oracle \
  --results-out "$dir/resp"
"$CHECK" --serve-response "$dir/resp" > /dev/null
test "$(grep -c '"cache":"miss"' "$dir/resp")" = 9
test "$(grep -c '"cache":"hit"' "$dir/resp")" = 18

# Decode pass (9 more hits): served bytes == CLI stdout minus its cost line.
"$LOAD" --port-file "$dir/port" --send "$dir/uniq" --decode \
  --results-out "$dir/got"
: > "$dir/want"
for seed in 1 2 3; do
  "$CLI" neighbor --seed "$seed" --n 8 --k 1 --query 0 | sed '$d' >> "$dir/want"
  "$CLI" collisions --seed "$seed" --n 8 --k 1 --query 1 | sed '$d' >> "$dir/want"
  "$CLI" contain --seed "$seed" --n 8 --k 1 --box 8,6 | sed '$d' >> "$dir/want"
done
diff "$dir/want" "$dir/got"

# --- 2. exact counters ----------------------------------------------------
echo '{"op":"stats","id":"s"}' > "$dir/statreq"
"$LOAD" --port-file "$dir/port" --send "$dir/statreq" > "$dir/stats"
grep -q '"hits":27,"misses":9,"evictions":0' "$dir/stats"

# --- 3. error paths on a live connection ----------------------------------
{
  echo 'this is not json'
  echo '{"op":"frobnicate"}'
  echo '{"op":"neighbor","scenario":{"n":99999}}'
  echo '{"op":"neighbor","query":"zero"}'
  echo '{"op":"pairs","machine":"ccc"}'
  echo '{"op":"neighbor","faults":"bogus:1@2"}'
  echo '{"op":"ping","id":"still-alive"}'
} > "$dir/errs"
"$LOAD" --port-file "$dir/port" --send "$dir/errs" --results-out "$dir/errresp"
"$CHECK" --serve-response "$dir/errresp" > /dev/null
test "$(grep -c '"status":"PARSE_ERROR"' "$dir/errresp")" = 2
test "$(grep -c '"status":"INVALID_ARGUMENT"' "$dir/errresp")" = 4
grep -q '"id":"still-alive","status":"OK"' "$dir/errresp"

# --- 3b. admission: over-long lines against a tight max-line ---------------
"$SERVE" --port-file "$dir/port2" --max-line 200 &
pid2=$!
{
  awk 'BEGIN { printf "{\"op\":\"ping\",\"pad\":\""; \
               for (i = 0; i < 400; i++) printf "x"; print "\"}" }'
  echo '{"op":"ping","id":"after-long"}'
} > "$dir/long"
"$LOAD" --port-file "$dir/port2" --send "$dir/long" \
  --results-out "$dir/longresp"
grep -q 'exceeds max_line' "$dir/longresp"
grep -q '"id":"after-long","status":"OK"' "$dir/longresp"

# --- 4. clean SIGTERM shutdown --------------------------------------------
kill -TERM "$pid"
wait "$pid"
pid=
kill -TERM "$pid2"
wait "$pid2"
pid2=
