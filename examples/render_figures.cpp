// Regenerates the paper's geometric figures as SVG files in the current
// directory:
//   figure4.svg — the pieces of min{f, g, h} (functions + envelope)
//   figure5.svg — a partial angle function switching defined/undefined
//   figure6.svg — a convex polygon, an antipodal pair, parallel lines of
//                 support, and the edge-ray sector diagram
//
//   $ ./render_figures [output_dir]
#include <cmath>
#include <cstdio>
#include <string>

#include "dyncg/hull_membership.hpp"
#include "dyncg/motion.hpp"
#include "pieces/envelope_serial.hpp"
#include "steady/machine_geometry.hpp"
#include "support/rng.hpp"
#include "support/svg.hpp"

namespace {

using namespace dyncg;

bool render_figure4(const std::string& dir) {
  PolyFamily fam({Polynomial({6.0, -0.5}),   // f
                  Polynomial({0.0, 1.0}),    // g
                  Polynomial({2.0})});       // h
  const char* names[] = {"f", "g", "h"};
  const char* colors[] = {"#888", "#888", "#888"};
  SvgCanvas svg(-0.5, -0.8, 12.0, 8.0);
  // The three functions.
  for (int i = 0; i < 3; ++i) {
    std::vector<std::pair<double, double>> pts;
    for (double t = 0; t <= 12; t += 0.1) pts.push_back({t, fam.value(i, t)});
    svg.polyline(pts, colors[i], 1.5);
    svg.text(10.7, fam.value(i, 10.7) + 0.25, names[i], 15, "#555");
  }
  // The envelope, thick, with piece boundaries marked.
  PiecewiseFn env = lower_envelope_serial(fam);
  std::vector<std::pair<double, double>> epts;
  for (double t = 0; t <= 12; t += 0.05) {
    epts.push_back({t, fam.value(env.id_at(t), t)});
  }
  svg.polyline(epts, "#c0392b", 3.5);
  const char* labels[] = {"a", "b"};
  int li = 0;
  for (const Piece& p : env.pieces) {
    if (std::isinf(p.iv.hi)) break;
    svg.line(p.iv.hi, -0.8, p.iv.hi, fam.value(p.id, p.iv.hi), "#777", 1.0,
             true);
    svg.circle(p.iv.hi, fam.value(p.id, p.iv.hi), 4, "#c0392b");
    if (li < 2) svg.text(p.iv.hi - 0.15, -0.55, labels[li++], 14);
  }
  svg.text(0.2, 7.4, "Figure 4: pieces of min{f, g, h}", 16);
  svg.text(0.2, 6.9, "(g,[0,a]); (h,[a,b]); (f,[b,inf))", 13, "#c0392b");
  return svg.save(dir + "/figure4.svg");
}

bool render_figure5(const std::string& dir) {
  // One partial angle function: G for a point crossing the query's
  // horizontal line twice (defined where y_j >= y_0).
  std::vector<Trajectory> pts;
  pts.push_back(Trajectory::fixed({0.0, 0.0}));
  pts.push_back(Trajectory(
      {Polynomial({-1.0, 0.4}), Polynomial::from_roots({1.0, 4.0})}));
  MotionSystem sys(2, std::move(pts));
  RelativeMotion rel = RelativeMotion::around(sys, 0);
  AngleFamily g(&rel, true);
  SvgCanvas svg(-0.3, -3.6, 7.0, 3.6);
  svg.line(-0.3, 0, 7.0, 0, "#999", 1.0);
  svg.text(6.5, 0.15, "t", 13, "#555");
  for (const Interval& iv : g.defined_intervals(0)) {
    std::vector<std::pair<double, double>> seg;
    double hi = std::isinf(iv.hi) ? 7.0 : iv.hi;
    for (double t = iv.lo; t <= hi; t += 0.02) {
      seg.push_back({t, g.value(0, t)});
    }
    svg.polyline(seg, "#2471a3", 3.0);
    svg.line(iv.lo, -3.5, iv.lo, 3.5, "#b03a2e", 1.0, true);
    if (!std::isinf(iv.hi)) svg.line(iv.hi, -3.5, iv.hi, 3.5, "#b03a2e", 1.0, true);
  }
  svg.text(0.1, 3.2, "Figure 5: a partial function G_j with transitions", 15);
  svg.text(0.1, 2.8, "(defined only while y_j >= y_0; dashes mark "
           "transitions)", 12, "#b03a2e");
  return svg.save(dir + "/figure5.svg");
}

bool render_figure6(const std::string& dir) {
  // A convex hexagon with one antipodal pair and its parallel support
  // lines, plus the sector rays at the origin.
  Rng rng(12);
  std::vector<Point2<double>> raw;
  for (int i = 0; i < 6; ++i) {
    double a = 2 * M_PI * i / 6.0 + 0.2;
    double r = 3.0 + rng.uniform(-0.6, 0.6);
    raw.push_back(Point2<double>{r * std::cos(a), r * std::sin(a),
                                 static_cast<std::size_t>(i)});
  }
  auto hull = convex_hull(raw);
  SvgCanvas svg(-9.5, -5.5, 9.5, 5.5, 760, 440);
  std::vector<std::pair<double, double>> poly;
  for (const auto& p : hull) poly.push_back({p.x - 4.5, p.y});
  svg.polygon(poly, "#1e8449", "#82e0aa");
  for (std::size_t i = 0; i < hull.size(); ++i) {
    svg.circle(hull[i].x - 4.5, hull[i].y, 4, "#145a32");
    svg.text(hull[i].x - 4.4, hull[i].y + 0.25,
             "v" + std::to_string(i), 12, "#145a32");
  }
  // Farthest antipodal pair + support lines perpendicular to the diameter.
  auto pairs = antipodal_pairs(hull);
  std::size_t ba = pairs[0].first, bb = pairs[0].second;
  double best = 0;
  for (auto [a, b] : pairs) {
    double d = dist2(hull[a], hull[b]);
    if (d > best) {
      best = d;
      ba = a;
      bb = b;
    }
  }
  const auto& A = hull[ba];
  const auto& B = hull[bb];
  svg.line(A.x - 4.5, A.y, B.x - 4.5, B.y, "#c0392b", 2.0);
  double dx = B.x - A.x, dy = B.y - A.y;
  double len = std::sqrt(dx * dx + dy * dy);
  double px = -dy / len * 3.0, py = dx / len * 3.0;
  svg.line(A.x - 4.5 - px, A.y - py, A.x - 4.5 + px, A.y + py, "#555", 1.2, true);
  svg.line(B.x - 4.5 - px, B.y - py, B.x - 4.5 + px, B.y + py, "#555", 1.2, true);
  svg.text(-8.9, 4.9, "Figure 6a: antipodal pair + parallel lines of "
           "support", 14);
  // 6b: edge-ray sector diagram on the right.
  double cx = 5.0, cy = 0.0;
  std::size_t h = hull.size();
  for (std::size_t i = 0; i < h; ++i) {
    const auto& prev = hull[(i + h - 1) % h];
    const auto& cur = hull[i];
    double ex = cur.x - prev.x, ey = cur.y - prev.y;
    double el = std::sqrt(ex * ex + ey * ey);
    svg.line(cx, cy, cx + 3.5 * ex / el, cy + 3.5 * ey / el, "#1a5276", 1.6);
    svg.text(cx + 3.8 * ex / el, cy + 3.8 * ey / el,
             "e" + std::to_string(i), 12, "#1a5276");
  }
  svg.circle(cx, cy, 3, "#1a5276");
  svg.text(2.4, 4.9, "Figure 6b: edge rays partition directions into "
           "sectors", 14);
  return svg.save(dir + "/figure6.svg");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : ".";
  bool ok = render_figure4(dir) && render_figure5(dir) && render_figure6(dir);
  std::printf("%s/figure4.svg, figure5.svg, figure6.svg: %s\n", dir.c_str(),
              ok ? "written" : "FAILED");
  return ok ? 0 : 1;
}
