// Beyond polynomials (Section 6, "Further Remarks"): the paper's algorithms
// only need functions that are continuous, O(1) to store and evaluate, and
// pairwise crossing at most k times with computable crossings.  This
// example runs the Theorem 3.2 machinery on motions of the form
//   f(t) = a + b sqrt(t) + c t
// (diffusive drift plus constant velocity) — say, the concentration fronts
// of n plumes — and asks which plume's front is lowest over time.
//
//   $ ./general_motion [n]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "envelope/parallel_envelope.hpp"
#include "pieces/envelope_serial.hpp"
#include "pieces/sqrt_family.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace dyncg;
  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;

  Rng rng(321);
  std::vector<SqrtMotion> fronts;
  for (std::size_t i = 0; i < n; ++i) {
    fronts.push_back(SqrtMotion{rng.uniform(0.0, 8.0),     // initial offset
                                rng.uniform(0.2, 2.0),     // diffusion
                                rng.uniform(-0.5, 0.5)});  // drift
  }
  SqrtFamily family(std::move(fronts));

  std::printf("Minimum function of %zu sqrt-motions (Section 6 generalized "
              "setting)\n\n", n);
  Machine cube =
      envelope_machine_hypercube(family.size(), SqrtFamily::kCrossingBound);
  CostMeter meter(cube.ledger());
  PiecewiseFn env =
      parallel_envelope(cube, family, SqrtFamily::kCrossingBound);
  std::printf("on %s:\n", cube.topology().name().c_str());
  for (const Piece& p : env.pieces) {
    const SqrtMotion& m = family.member(p.id);
    std::printf("  %-20s front %d   (%.2f + %.2f sqrt(t) + %.2f t)\n",
                p.iv.to_string().c_str(), p.id, m.a, m.b, m.c);
  }
  std::printf("cost: %s\n\n", meter.elapsed().to_string().c_str());

  // Verify against dense evaluation.
  int mismatches = 0;
  for (double t = 0.05; t < 100.0; t += 0.83) {
    int id = env.id_at(t);
    double got = family.value(id, t);
    double want = got;
    for (int i = 0; i < static_cast<int>(family.size()); ++i) {
      want = std::min(want, family.value(i, t));
    }
    if (got > want + 1e-7 * (1 + std::fabs(want))) ++mismatches;
  }
  std::printf("dense-evaluation cross-check: %s\n",
              mismatches == 0 ? "OK" : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
