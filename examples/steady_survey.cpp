// Steady-state survey (Section 5): debris from an explosion flies apart
// along polynomial trajectories.  Once the transient settles, which
// fragments form the convex hull?  Which pair separates fastest (farthest
// pair), which stays closest, and what is the minimal-area bounding
// rectangle's shape?  All answered without simulating time forward: the
// Reduction Lemma (Lemma 5.1) runs the static algorithms on coordinate
// germs at t = infinity, both serially and on a simulated mesh.
//
//   $ ./steady_survey [n_fragments]
#include <cstdio>
#include <cstdlib>

#include "dyncg/motion.hpp"
#include "steady/machine_geometry.hpp"
#include "steady/steady_state.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace dyncg;
  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 14;

  Rng rng(99);
  MotionSystem debris = diverging_motion_system(rng, n, /*k=*/2);
  std::printf("Debris cloud: %zu fragments with k = %d motion\n\n", n,
              debris.motion_degree());

  // Serial steady-state answers via Lemma 5.1.
  std::printf("Steady-state hull (Proposition 5.4): fragments ");
  for (std::size_t id : steady_hull_ids(debris)) std::printf("%zu ", id);
  std::printf("\n");

  auto close = steady_closest_pair(debris);
  std::printf("Steady-state closest pair (Prop 5.3): (%zu, %zu)\n", close.a,
              close.b);
  auto far = steady_farthest_pair(debris);
  std::printf("Steady-state farthest pair (Cor 5.7): (%zu, %zu)\n", far.a,
              far.b);
  Polynomial diam2 = steady_diameter_squared(debris);
  std::printf("Diameter^2 grows like degree-%d polynomial: %s\n",
              diam2.degree(), diam2.to_string().c_str());
  SteadyRectangle rect = steady_min_rectangle(debris);
  std::printf("Min-area rectangle flush with hull edge (%zu, %zu) "
              "(Thm 5.8)\n\n", rect.edge_from, rect.edge_to);

  // The same questions on a simulated mesh (Table 3).
  Machine mesh = Machine::mesh_for(n);
  std::printf("--- machine run on %s ---\n", mesh.topology().name().c_str());
  CostMeter meter(mesh.ledger());
  std::size_t nn = machine_steady_neighbor(mesh, debris, 0);
  auto c1 = meter.elapsed();
  std::printf("steady NN of fragment 0: %zu       (%s)\n", nn,
              c1.to_string().c_str());

  Machine mesh2 = Machine::mesh_for(n);
  CostMeter meter2(mesh2.ledger());
  auto hull_ids = machine_steady_hull_ids(mesh2, debris);
  std::printf("machine hull (%zu vertices)       (%s)\n", hull_ids.size(),
              meter2.elapsed().to_string().c_str());

  Machine mesh3 = Machine::mesh_for(n);
  CostMeter meter3(mesh3.ledger());
  auto mfar = machine_steady_farthest_pair(mesh3, debris);
  std::printf("machine farthest pair (%zu, %zu)    (%s)\n", mfar.a, mfar.b,
              meter3.elapsed().to_string().c_str());

  bool ok = (mfar.a == far.a && mfar.b == far.b) ||
            (mfar.a == far.b && mfar.b == far.a);
  std::printf("\nserial/machine agreement: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
