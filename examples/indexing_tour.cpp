// Indexing tour (Figures 1-3): prints the four mesh indexing schemes of
// Figure 2 for a mesh of size 16, demonstrates the two proximity-order
// properties the paper relies on, prints the Gray-code ordering of a
// 16-node hypercube (Figure 3), and shows how the offset-exchange round
// costs differ between orderings — the machinery behind every Table 1
// entry.
//
//   $ ./indexing_tour
#include <cstdio>

#include "machine/topology.hpp"

int main() {
  using namespace dyncg;

  std::printf("Figure 2: indexing schemes for a mesh of size 16\n\n");
  for (MeshOrder order :
       {MeshOrder::kRowMajor, MeshOrder::kShuffledRowMajor, MeshOrder::kSnake,
        MeshOrder::kProximity}) {
    std::printf("%s:\n", to_string(order));
    for (std::uint32_t r = 0; r < 4; ++r) {
      std::printf("   ");
      for (std::uint32_t c = 0; c < 4; ++c) {
        std::printf("%3llu",
                    static_cast<unsigned long long>(
                        mesh_rc_to_rank(order, 4, RowCol{r, c})));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("Proximity-order properties (Section 2.2):\n");
  MeshTopology prox(8, MeshOrder::kProximity);
  bool adjacent_ok = true;
  for (std::size_t r = 0; r + 1 < prox.size(); ++r) {
    adjacent_ok &= prox.adjacent(prox.node_of_rank(r), prox.node_of_rank(r + 1));
  }
  std::printf("  1. consecutive PEs adjacent: %s\n",
              adjacent_ok ? "yes" : "NO");
  std::printf("  2. recursive submeshes of consecutive PEs: see Figure 2d "
              "quadrants above\n\n");

  std::printf("Figure 3: Gray-code ordering of a 16-node hypercube\n  rank:");
  HypercubeTopology cube(4);
  for (std::size_t r = 0; r < 16; ++r) std::printf(" %2zu", r);
  std::printf("\n  node:");
  for (std::size_t r = 0; r < 16; ++r) {
    std::printf(" %2zu", cube.node_of_rank(r));
  }
  std::printf("\n  consecutive ranks differ in one bit -> adjacent.\n\n");

  std::printf("Offset-exchange round costs (ranks r <-> r ^ 2^k):\n");
  std::printf("  %-28s", "topology/order");
  for (unsigned k = 0; k < 6; ++k) std::printf(" k=%u", k);
  std::printf("\n");
  MeshTopology rm(8, MeshOrder::kRowMajor);
  MeshTopology sh(8, MeshOrder::kShuffledRowMajor);
  MeshTopology hb(8, MeshOrder::kProximity);
  HypercubeTopology nat(6, CubeOrder::kNatural);
  HypercubeTopology gray(6, CubeOrder::kGray);
  for (const Topology* t :
       {static_cast<const Topology*>(&rm), static_cast<const Topology*>(&sh),
        static_cast<const Topology*>(&hb), static_cast<const Topology*>(&nat),
        static_cast<const Topology*>(&gray)}) {
    std::printf("  %-28s", t->name().c_str());
    for (unsigned k = 0; k < 6; ++k) std::printf(" %3u", t->exchange_rounds(k));
    std::printf("\n");
  }
  std::printf(
      "\nMesh exchanges cost Theta(2^(k/2)) rounds, hypercube exchanges "
      "O(1):\nsumming ladders gives the Theta(n^(1/2)) vs Theta(log n) "
      "rows of Table 1.\n");
  return 0;
}
