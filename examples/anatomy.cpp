// Anatomy of a Theorem 4.5 run: where do the rounds go?
//
// Uses the MachineProfile phase profiler to break a hull-membership
// computation into the paper's own steps — the four Theorem 3.4 partial
// envelopes (a0, b0, c0, d0), the indicator passes (A0/B0), and the final
// packing — on both a mesh and a hypercube, and prints the share of each.
//
//   $ ./anatomy [n]
#include <cstdio>
#include <cstdlib>

#include "dyncg/hull_membership.hpp"
#include "machine/profile.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace dyncg;
  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 64;

  Rng rng(2026);
  MotionSystem sys = random_motion_system(rng, n, 2, 2);
  const int k = sys.motion_degree();
  const int s_bound = 4 * k;

  for (int which = 0; which < 2; ++which) {
    Machine m = which == 0 ? hull_membership_machine_mesh(sys)
                           : hull_membership_machine_hypercube(sys);
    std::printf("=== %s (%zu PEs, n = %zu, k = %d) ===\n",
                m.topology().name().c_str(), m.size(), n, k);
    MachineProfile prof(m);
    RelativeMotion rel = RelativeMotion::around(sys, 0);
    AngleFamily gfam(&rel, true), bfam(&rel, false);
    PiecewiseFn a0, b0, c0, d0;
    {
      auto ph = prof.phase("envelope a0 = min G (Thm 3.4)");
      a0 = parallel_envelope(m, gfam, s_bound, true);
    }
    {
      auto ph = prof.phase("envelope b0 = max G");
      b0 = parallel_envelope(m, gfam, s_bound, false);
    }
    {
      auto ph = prof.phase("envelope c0 = min B");
      c0 = parallel_envelope(m, bfam, s_bound, true);
    }
    {
      auto ph = prof.phase("envelope d0 = max B");
      d0 = parallel_envelope(m, bfam, s_bound, false);
    }
    IntervalSet result;
    {
      auto ph = prof.phase("indicators A0/B0/C0/D0 + pack");
      // Re-run the full pipeline for the indicator half; subtract the
      // envelope phases measured above.
      Machine m2 = which == 0 ? hull_membership_machine_mesh(sys)
                              : hull_membership_machine_hypercube(sys);
      result = hull_membership_intervals(m2, sys, 0);
      // Transfer the measured remainder: total minus four envelopes.
      CostSnapshot whole = m2.ledger().snapshot();
      CostSnapshot envs = prof.total();
      m.ledger().add_rounds(whole.rounds > envs.rounds
                                ? whole.rounds - envs.rounds
                                : 0);
    }
    std::printf("%s", prof.report().c_str());
    std::printf("P0 is a hull vertex during %s\n\n",
                result.to_string().c_str());
  }
  return 0;
}
