// Air-traffic control (the paper's own motivating application): aircraft on
// straight-line flight paths over a sector.  For a watched aircraft we
// compute, on a simulated mesh,
//   * the chronological nearest-neighbor sequence (Theorem 4.1) — who is
//     the closest traffic over time,
//   * all collision times (Theorem 4.2) — here, losses of separation with
//     planted conflicts,
// and cross-check both against the machine-independent serial oracles.
//
//   $ ./air_traffic [n_aircraft]
#include <cstdio>
#include <cstdlib>

#include "dyncg/collision.hpp"
#include "dyncg/motion.hpp"
#include "dyncg/proximity.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace dyncg;
  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;

  // Aircraft enter the sector at random fixes with random constant
  // velocities (1-motion).  Aircraft 0 is the one we watch; aircraft 1 and
  // 2 are planted on collision courses with it at t = 30 and t = 55.
  Rng rng(2026);
  std::vector<Trajectory> fleet;
  fleet.push_back(
      Trajectory({Polynomial({0.0, 1.0}), Polynomial({0.0, 0.5})}));
  // Conflict at t = 30 with the watched aircraft (position (30, 15)).
  fleet.push_back(
      Trajectory({Polynomial({60.0, -1.0}), Polynomial({45.0, -1.0})}));
  // Conflict at t = 55 (position (55, 27.5)).
  fleet.push_back(
      Trajectory({Polynomial({0.0, 1.0}), Polynomial({82.5, -1.0})}));
  while (fleet.size() < n) {
    fleet.push_back(Trajectory({Polynomial({rng.uniform(-80, 80), rng.uniform(-1.5, 1.5)}),
                                Polynomial({rng.uniform(-80, 80), rng.uniform(-1.5, 1.5)})}));
  }
  MotionSystem sector(2, std::move(fleet));

  Machine mesh = proximity_machine_mesh(sector);
  std::printf("Sector with %zu aircraft on %s\n\n", sector.size(),
              mesh.topology().name().c_str());

  CostMeter meter(mesh.ledger());
  NeighborSequence seq = neighbor_sequence(mesh, sector, 0);
  std::printf("Closest traffic to flight 0 over time (Theorem 4.1):\n");
  for (const NeighborEpoch& e : seq.epochs) {
    std::printf("  %-22s flight %zu\n", e.iv.to_string().c_str(), e.neighbor);
  }
  std::printf("cost: %s\n\n", meter.elapsed().to_string().c_str());

  Machine mesh2 = collision_machine_mesh(sector);
  CostMeter meter2(mesh2.ledger());
  CollisionReport rep = collision_times(mesh2, sector, 0);
  std::printf("Collision (loss-of-separation) times for flight 0 "
              "(Theorem 4.2):\n");
  if (rep.events.empty()) std::printf("  none\n");
  for (const CollisionEvent& e : rep.events) {
    std::printf("  t = %8.3f  with flight %zu\n", e.time, e.other);
  }
  std::printf("cost: %s\n\n", meter2.elapsed().to_string().c_str());

  // Cross-check a few sample instants against the brute-force oracle.
  int mismatches = 0;
  for (double t = 0.5; t < 100.0; t += 7.3) {
    std::size_t got = seq.neighbor_at(t);
    std::size_t want = brute_force_neighbor(sector, 0, t, false);
    double dg = sector.point(0).distance_squared(sector.point(got))(t);
    double dw = sector.point(0).distance_squared(sector.point(want))(t);
    if (dg > dw * (1 + 1e-9)) ++mismatches;
  }
  std::printf("oracle cross-check: %s\n",
              mismatches == 0 ? "OK" : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
