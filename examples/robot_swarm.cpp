// Robot swarm containment (Section 4.3): a swarm of robots disperses from a
// staging area, regroups to pass through a corridor, then disperses again.
// On a simulated hypercube we compute
//   * the intervals when the swarm fits through a W x H corridor
//     (Theorem 4.6),
//   * the edge-length function of the smallest enclosing square
//     (Theorem 4.7),
//   * the smallest square that ever suffices, and when (Corollary 4.8).
//
//   $ ./robot_swarm [n_robots]
#include <cstdio>
#include <cstdlib>

#include "dyncg/containment.hpp"
#include "dyncg/motion.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace dyncg;
  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;

  // Quadratic (k = 2) trajectories through waypoints: robot i starts at a
  // ring position, passes near the corridor mouth around t = 5, and fans
  // out afterwards.  x(t), y(t) are the unique parabolas through the three
  // waypoints t = 0, 5, 10.
  Rng rng(7);
  std::vector<Trajectory> robots;
  auto parabola_through = [](double p0, double p5, double p10) {
    // c0 + c1 t + c2 t^2 hitting the three values.
    double c0 = p0;
    double c2 = (p10 - 2 * p5 + p0) / 50.0;
    double c1 = (p5 - p0 - 25 * c2) / 5.0;
    return Polynomial({c0, c1, c2});
  };
  for (std::size_t i = 0; i < n; ++i) {
    double a = 2 * M_PI * static_cast<double>(i) / static_cast<double>(n);
    double sx = 30 * std::cos(a), sy = 30 * std::sin(a);
    double mx = rng.uniform(-2.0, 2.0), my = rng.uniform(-1.5, 1.5);
    double ex = 60 * std::cos(a + 0.8), ey = 60 * std::sin(a + 0.8);
    robots.push_back(Trajectory(
        {parabola_through(sx, mx, ex), parabola_through(sy, my, ey)}));
  }
  MotionSystem swarm(2, std::move(robots));

  Machine cube = containment_machine_hypercube(swarm);
  std::printf("Swarm of %zu robots (k = %d) on %s\n\n", swarm.size(),
              swarm.motion_degree(), cube.topology().name().c_str());

  const double W = 8.0, H = 6.0;
  CostMeter m1(cube.ledger());
  IntervalSet corridor = containment_intervals(cube, swarm, {W, H});
  std::printf("Swarm fits through the %.0fx%.0f corridor during "
              "(Theorem 4.6):\n  %s\n", W, H, corridor.to_string().c_str());
  std::printf("cost: %s\n\n", m1.elapsed().to_string().c_str());

  Machine cube2 = containment_machine_hypercube(swarm);
  CostMeter m2(cube2.ledger());
  PiecewisePoly edge = enclosing_cube_edge(cube2, swarm);
  std::printf("Edge length D(t) of the smallest enclosing square "
              "(Theorem 4.7): %zu pieces\n", edge.piece_count());
  for (double t : {0.0, 2.5, 5.0, 7.5, 10.0}) {
    std::printf("  D(%4.1f) = %8.3f\n", t, edge(t));
  }
  std::printf("cost: %s\n\n", m2.elapsed().to_string().c_str());

  Machine cube3 = containment_machine_hypercube(swarm);
  SmallestCube best = smallest_enclosing_cube(cube3, swarm);
  std::printf("Smallest square ever needed (Corollary 4.8): edge %.3f at "
              "t = %.3f\n", best.edge, best.time);

  // Sanity: the reported optimum must match a brute-force spread there.
  double check = std::max(brute_force_spread(swarm, 0, best.time),
                          brute_force_spread(swarm, 1, best.time));
  std::printf("oracle cross-check: %s\n",
              std::abs(check - best.edge) < 1e-6 ? "OK" : "MISMATCH");
  return std::abs(check - best.edge) < 1e-6 ? 0 : 1;
}
