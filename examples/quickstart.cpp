// Quickstart: build a small dynamic system, construct the minimum function
// of the squared distances to a query point on a simulated mesh AND a
// simulated hypercube (Theorems 3.2 / 4.1), and print the pieces together
// with the machines' cost ledgers.
//
//   $ ./quickstart
#include <cstdio>

#include "dyncg/motion.hpp"
#include "dyncg/proximity.hpp"
#include "envelope/parallel_envelope.hpp"
#include "machine/machine.hpp"

int main() {
  using namespace dyncg;

  // Four points in the plane with 1-motion (linear trajectories).
  // P0 is the query; P1 starts near it but drifts away; P2 starts far but
  // approaches; P3 orbits the middle distance.
  std::vector<Trajectory> pts;
  pts.push_back(Trajectory({Polynomial({0.0}), Polynomial({0.0})}));
  pts.push_back(Trajectory({Polynomial({1.0, 0.8}), Polynomial({0.0, 0.3})}));
  pts.push_back(Trajectory({Polynomial({9.0, -0.9}), Polynomial({2.0})}));
  pts.push_back(Trajectory({Polynomial({-4.0, 0.2}), Polynomial({3.0, -0.1})}));
  MotionSystem system(2, std::move(pts));

  std::printf("Dynamic system: %zu points, k-motion with k = %d\n\n",
              system.size(), system.motion_degree());

  for (int which = 0; which < 2; ++which) {
    Machine m = which == 0 ? proximity_machine_mesh(system)
                           : proximity_machine_hypercube(system);
    std::printf("--- %s (%zu PEs) ---\n", m.topology().name().c_str(),
                m.size());
    CostMeter meter(m.ledger());
    NeighborSequence seq = neighbor_sequence(m, system, /*query=*/0);
    std::printf("Nearest-neighbor sequence R for P0 (Theorem 4.1):\n");
    for (const NeighborEpoch& e : seq.epochs) {
      std::printf("  %-16s nearest = P%zu\n", e.iv.to_string().c_str(),
                  e.neighbor);
    }
    std::printf("cost: %s\n\n", meter.elapsed().to_string().c_str());
  }

  std::printf(
      "The two machines compute identical sequences; the mesh pays\n"
      "Theta(sqrt(P)) rounds and the hypercube Theta(log^2 P), exactly the\n"
      "Table 2 row for this problem.\n");
  return 0;
}
